#include "src/engine/window_aggregate.h"

#include <algorithm>

#include "src/dist/gaussian.h"
#include "src/engine/window_state.h"
#include "src/serde/checkpoint.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<WindowAggregate>> WindowAggregate::Make(
    OperatorPtr child, std::string column, std::string output_name,
    WindowAggregateOptions options) {
  if (options.window_size == 0) {
    return Status::InvalidArgument("window size must be >= 1");
  }
  if (options.emit_revisions && options.kind == WindowKind::kTumbling) {
    return Status::InvalidArgument(
        "revision mode requires a sliding window: a tumbling window "
        "resets its state at each emission, so there is no current "
        "window left to revise");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t idx, child->schema().IndexOf(column));
  const FieldType type = child->schema().field(idx).type;
  if (type != FieldType::kUncertain && type != FieldType::kDouble) {
    return Status::TypeError("window aggregate column '" + column +
                             "' must be numeric");
  }
  Schema out_schema;
  AUSDB_RETURN_NOT_OK(
      out_schema.AddField({std::move(output_name), FieldType::kUncertain}));
  if (options.emit_revisions) {
    AUSDB_RETURN_NOT_OK(
        out_schema.AddField({"revision", FieldType::kBool}));
  }
  return std::unique_ptr<WindowAggregate>(new WindowAggregate(
      std::move(child), idx, std::move(out_schema), options));
}

WindowAggregate::WindowAggregate(OperatorPtr child, size_t column_index,
                                 Schema out_schema,
                                 WindowAggregateOptions options)
    : child_(std::move(child)),
      column_index_(column_index),
      column_is_double_(child_->schema().field(column_index).type ==
                        FieldType::kDouble),
      schema_(std::move(out_schema)),
      options_(options) {
  if (options_.emit_revisions) {
    revising_ = std::make_unique<KeyWindowState>();
  }
}

WindowAggregate::~WindowAggregate() = default;

void WindowAggregate::Push(const Entry& e) {
  window_.push_back(e);
  sum_mean_.Add(e.mean);
  sum_variance_.Add(e.variance);
  while (!min_deque_.empty() &&
         min_deque_.back().sample_size >= e.sample_size) {
    min_deque_.pop_back();
  }
  min_deque_.push_back(e);
}

void WindowAggregate::PopFront() {
  const Entry& e = window_.front();
  sum_mean_.Subtract(e.mean);
  sum_variance_.Subtract(e.variance);
  if (!min_deque_.empty() &&
      min_deque_.front().sequence == e.sequence) {
    min_deque_.pop_front();
  }
  window_.pop_front();
}

Result<std::optional<Tuple>> WindowAggregate::StepEntry(
    const WindowEntry& we, const Tuple& t) {
  if (options_.emit_revisions) {
    bool shed = false;
    std::optional<KeyWindowState::Emission> emission =
        revising_->ObserveRevising(we, options_, &shed);
    if (shed) ++shed_late_;
    if (!emission.has_value()) return std::optional<Tuple>(std::nullopt);
    dist::RandomVar agg(
        std::make_shared<dist::GaussianDist>(
            emission->aggregate.mean,
            std::max(0.0, emission->aggregate.variance)),
        emission->aggregate.df);
    Tuple out({expr::Value(std::move(agg)),
               expr::Value(emission->revision)});
    out.set_sequence(t.sequence());
    out.set_membership_prob(t.membership_prob());
    out.set_membership_df_n(t.membership_df_n());
    return std::optional<Tuple>(std::move(out));
  }

  Entry e;
  e.sequence = we.sequence;
  e.mean = we.mean;
  e.variance = we.variance;
  e.sample_size = we.sample_size;

  Push(e);
  if (options_.kind == WindowKind::kTumbling) {
    // Tumbling: emit only when the window fills, then start over.
    if (window_.size() < options_.window_size) {
      return std::optional<Tuple>(std::nullopt);
    }
  } else {
    if (window_.size() > options_.window_size) PopFront();
    if (window_.size() < options_.window_size &&
        !options_.emit_partial) {
      return std::optional<Tuple>(std::nullopt);
    }
  }

  const double w = static_cast<double>(window_.size());
  double mean = sum_mean_.Get();
  double variance = sum_variance_.Get();
  if (options_.fn == WindowAggFn::kAvg) {
    mean /= w;
    variance /= w * w;
  }
  const size_t df = min_deque_.front().sample_size;

  dist::RandomVar agg(
      std::make_shared<dist::GaussianDist>(mean,
                                           std::max(0.0, variance)),
      df);
  Tuple out({expr::Value(std::move(agg))});
  out.set_sequence(t.sequence());
  out.set_membership_prob(t.membership_prob());
  out.set_membership_df_n(t.membership_df_n());
  if (options_.kind == WindowKind::kTumbling) {
    window_.clear();
    min_deque_.clear();
    sum_mean_.Reset();
    sum_variance_.Reset();
  }
  return std::optional<Tuple>(std::move(out));
}

Result<std::optional<Tuple>> WindowAggregate::Next() {
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
    ++input_consumed_;

    AUSDB_ASSIGN_OR_RETURN(
        WindowEntry we, WindowEntryFromValue(t->value(column_index_),
                                             options_));
    we.sequence = t->sequence();
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> out, StepEntry(we, *t));
    if (out.has_value()) return out;
  }
}

Status WindowAggregate::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  for (;;) {
    AUSDB_RETURN_NOT_OK(child_->NextBatch(max_n, input_));
    if (input_.empty()) return Status::OK();

    // Columnar entry extraction: a deterministic double column arrives
    // as one contiguous slice — the window entries {v, 0, certain} come
    // out of a flat array pass instead of per-row Value dispatch.
    std::span<const double> slice;
    if (column_is_double_ && !options_.emit_revisions) {
      AUSDB_RETURN_NOT_OK(input_.GatherColumns(child_->schema()));
      slice = input_.Column(column_index_);
    }

    for (size_t i = 0; i < input_.size(); ++i) {
      const Tuple& t = input_.rows()[i];
      ++input_consumed_;
      WindowEntry we;
      if (i < slice.size()) {
        we.mean = slice[i];
        we.variance = 0.0;
        we.sample_size = dist::RandomVar::kCertainSampleSize;
      } else {
        AUSDB_ASSIGN_OR_RETURN(
            we, WindowEntryFromValue(t.value(column_index_), options_));
      }
      we.sequence = t.sequence();
      AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> emission,
                             StepEntry(we, t));
      if (emission.has_value()) out.rows().push_back(std::move(*emission));
    }
    if (!out.empty()) return Status::OK();
  }
}

Status WindowAggregate::Reset() {
  window_.clear();
  min_deque_.clear();
  sum_mean_.Reset();
  sum_variance_.Reset();
  input_consumed_ = 0;
  shed_late_ = 0;
  if (revising_ != nullptr) *revising_ = KeyWindowState{};
  return child_->Reset();
}

Result<std::string> WindowAggregate::SaveCheckpoint() const {
  serde::CheckpointWriter w;
  w.Token("wagg.v4");
  w.Uint(static_cast<uint64_t>(options_.kind));
  w.Uint(static_cast<uint64_t>(options_.fn));
  w.Uint(options_.window_size);
  w.Uint(input_consumed_);
  w.Double(sum_mean_.raw_sum());
  w.Double(sum_mean_.compensation());
  w.Double(sum_variance_.raw_sum());
  w.Double(sum_variance_.compensation());
  // In revision mode the legacy accumulators above stay zero (every
  // emission is a scratch scan) and the live window is the
  // sequence-sorted one.
  const std::deque<WindowEntry>* rwin =
      revising_ != nullptr ? &revising_->window : nullptr;
  if (rwin != nullptr) {
    w.Uint(rwin->size());
    for (const WindowEntry& e : *rwin) {
      w.Double(e.mean);
      w.Double(e.variance);
      w.Uint(e.sample_size);
      w.Uint(e.sequence);
    }
  } else {
    w.Uint(window_.size());
    for (const Entry& e : window_) {
      w.Double(e.mean);
      w.Double(e.variance);
      w.Uint(e.sample_size);
      w.Uint(e.sequence);
    }
  }
  // v4 trailing block: revision-mode bookkeeping (all zero when the
  // operator runs without revisions).
  w.Uint(options_.emit_revisions ? 1 : 0);
  w.Uint(revising_ != nullptr && revising_->any_observed ? 1 : 0);
  w.Uint(revising_ != nullptr ? revising_->max_sequence : 0);
  w.Uint(revising_ != nullptr && revising_->any_evicted ? 1 : 0);
  w.Uint(revising_ != nullptr ? revising_->evicted_horizon : 0);
  w.Uint(shed_late_);
  return std::move(w).Finish();
}

Status WindowAggregate::RestoreCheckpoint(std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_ASSIGN_OR_RETURN(std::string version, r.NextToken());
  // v1 blobs predate compensated summation and carry plain sums; they
  // restore with zero compensation. v2 added the compensation terms;
  // v3 added the input position (restored as zero from older blobs);
  // v4 added the revision-mode bookkeeping block.
  const bool v1 = version == "wagg.v1";
  const bool v3 = version == "wagg.v3";
  const bool v4 = version == "wagg.v4";
  if (!v1 && !v3 && !v4 && version != "wagg.v2") {
    return Status::Corruption("unknown WindowAggregate checkpoint "
                              "version '" + version + "'");
  }
  if (!v4 && options_.emit_revisions) {
    return Status::InvalidArgument(
        "checkpoint predates revision mode and cannot restore into a "
        "revision-mode WindowAggregate");
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t kind, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t fn, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(uint64_t window_size, r.NextUint());
  if (kind != static_cast<uint64_t>(options_.kind) ||
      fn != static_cast<uint64_t>(options_.fn) ||
      window_size != options_.window_size) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "WindowAggregate");
  }
  uint64_t input_consumed = 0;
  if (v3 || v4) {
    AUSDB_ASSIGN_OR_RETURN(input_consumed, r.NextUint());
  }
  AUSDB_ASSIGN_OR_RETURN(double sum_mean, r.NextDouble());
  double comp_mean = 0.0;
  if (!v1) {
    AUSDB_ASSIGN_OR_RETURN(comp_mean, r.NextDouble());
  }
  AUSDB_ASSIGN_OR_RETURN(double sum_variance, r.NextDouble());
  double comp_variance = 0.0;
  if (!v1) {
    AUSDB_ASSIGN_OR_RETURN(comp_variance, r.NextDouble());
  }
  // Each entry encodes 2 hex doubles and 2 uints: >= 38 bytes with
  // separators. NextCount rejects counts the remaining bytes cannot hold.
  AUSDB_ASSIGN_OR_RETURN(uint64_t count, r.NextCount(38));
  window_.clear();
  min_deque_.clear();
  sum_mean_.Reset();
  sum_variance_.Reset();
  std::deque<WindowEntry> rwin;
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    AUSDB_ASSIGN_OR_RETURN(e.mean, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.variance, r.NextDouble());
    AUSDB_ASSIGN_OR_RETURN(e.sample_size, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(e.sequence, r.NextUint());
    if (options_.emit_revisions) {
      WindowEntry we;
      we.mean = e.mean;
      we.variance = e.variance;
      we.sample_size = e.sample_size;
      we.sequence = e.sequence;
      rwin.push_back(we);
    } else {
      Push(e);  // rebuilds min_deque_
    }
  }
  uint64_t ckpt_revisions = 0;
  uint64_t any_observed = 0;
  uint64_t max_sequence = 0;
  uint64_t any_evicted = 0;
  uint64_t evicted_horizon = 0;
  uint64_t shed_late = 0;
  if (v4) {
    AUSDB_ASSIGN_OR_RETURN(ckpt_revisions, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(any_observed, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(max_sequence, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(any_evicted, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(evicted_horizon, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(shed_late, r.NextUint());
  }
  if ((ckpt_revisions != 0) != options_.emit_revisions) {
    return Status::InvalidArgument(
        "checkpoint was taken from a differently configured "
        "WindowAggregate (revision mode mismatch)");
  }
  if (options_.emit_revisions) {
    *revising_ = KeyWindowState{};
    revising_->window = std::move(rwin);
    revising_->any_observed = any_observed != 0;
    revising_->max_sequence = max_sequence;
    revising_->any_evicted = any_evicted != 0;
    revising_->evicted_horizon = evicted_horizon;
  } else {
    // Push() resummed the entries; overwrite with the checkpointed
    // accumulators so they keep their exact floating-point history.
    sum_mean_.Restore(sum_mean, comp_mean);
    sum_variance_.Restore(sum_variance, comp_variance);
  }
  input_consumed_ = input_consumed;
  shed_late_ = shed_late;
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
