#ifndef AUSDB_ENGINE_OPERATOR_H_
#define AUSDB_ENGINE_OPERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/engine/batch.h"
#include "src/engine/schema.h"
#include "src/engine/tuple.h"

namespace ausdb {

class ThreadPool;

namespace engine {

/// \brief Pull-based (Volcano-style) stream operator.
///
/// Next() produces the next output tuple, std::nullopt at end of stream,
/// or a failure Status. Operators own their children; a query plan is a
/// tree of operators rooted at the one the executor pulls from.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Schema of the tuples this operator produces.
  virtual const Schema& schema() const = 0;

  /// Produces the next tuple, or nullopt when the stream is exhausted.
  virtual Result<std::optional<Tuple>> Next() = 0;

  /// \brief Produces up to `max_n` tuples into `out` (cleared first); an
  /// empty batch means end of stream. `max_n` must be >= 1.
  ///
  /// The batch contract: pulling a plan through NextBatch yields the
  /// byte-identical tuple sequence as pulling it through Next(), at any
  /// batch size — batching amortizes per-tuple virtual dispatch and
  /// exposes flat arrays to the dist/accuracy kernels, but is invisible
  /// in the output, the same determinism invariant the parallel, async,
  /// obs, and event-time layers already enforce. The default
  /// implementation loops Next(), so every operator supports batch pulls;
  /// hot-chain operators (Scan, Filter, Project, window aggregates,
  /// AccuracyAnnotator) override it natively. An operator that buffers
  /// input (window, filter) may pull its child in batches of its own
  /// sizing; only the *output* sequence is contractual.
  virtual Status NextBatch(size_t max_n, TupleBatch& out);

  /// Rewinds the operator (and its children) for a fresh pass, where
  /// supported. Default: NotImplemented.
  virtual Status Reset() {
    return Status::NotImplemented("operator does not support Reset");
  }

  /// \brief Releases external resources ahead of destruction: background
  /// prefetch threads, sockets, file handles. Idempotent, and must be
  /// safe to call at any point of the pull loop — including with tuples
  /// still buffered. Operators with children forward the call so a
  /// Close() on the plan root reaches the leaves; after Close(),
  /// Next() on a resource-backed source fails with kCancelled.
  /// Destructors imply Close, so calling it is only required when
  /// resources must be released before the plan is torn down.
  virtual Status Close() { return Status::OK(); }

  /// \brief Serializes this operator's mutable state (open-window
  /// accumulators, partition maps) into an opaque blob a fresh instance
  /// of the same shape can RestoreCheckpoint() from. Child operators are
  /// NOT included: a checkpointed pipeline must re-seek its sources to
  /// the recorded input position. Default: NotImplemented (stateless
  /// operators need no checkpoint).
  virtual Result<std::string> SaveCheckpoint() const {
    return Status::NotImplemented("operator does not support checkpoints");
  }

  /// Replaces this operator's mutable state with a SaveCheckpoint()
  /// blob taken from an identically configured operator. Restoring is
  /// bit-exact: subsequent output matches what the checkpointed
  /// instance would have produced.
  virtual Status RestoreCheckpoint(std::string_view blob) {
    (void)blob;
    return Status::NotImplemented("operator does not support checkpoints");
  }

  /// \brief Offers a worker pool to this operator and its subtree
  /// (`nullptr` unbinds). Parallel-aware operators use the pool for
  /// intra-operator data parallelism under the determinism contract —
  /// output is bit-identical with or without a pool, at any thread
  /// count. Operators with children must forward the binding; leaves
  /// may ignore it. The pool must outlive the binding.
  virtual void BindThreadPool(ThreadPool* pool) { (void)pool; }
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_OPERATOR_H_
