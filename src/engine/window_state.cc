#include "src/engine/window_state.h"

#include <algorithm>

#include "src/dist/random_var.h"

namespace ausdb {
namespace engine {

Result<WindowEntry> WindowEntryFromValue(
    const expr::Value& v, const WindowAggregateOptions& options) {
  WindowEntry e;
  if (v.is_random_var()) {
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
    if (!rv.is_certain() &&
        rv.distribution()->kind() != dist::DistributionKind::kGaussian &&
        !options.allow_clt_approximation) {
      return Status::NotImplemented(
          "closed-form window aggregation requires Gaussian or "
          "deterministic inputs; got " + rv.distribution()->ToString() +
          " (set allow_clt_approximation for a CLT-based Gaussian "
          "approximation)");
    }
    e.mean = rv.Mean();
    e.variance = rv.Variance();
    e.sample_size = rv.sample_size();
  } else {
    AUSDB_ASSIGN_OR_RETURN(double d, v.AsDouble());
    e.mean = d;
    e.variance = 0.0;
    e.sample_size = dist::RandomVar::kCertainSampleSize;
  }
  return e;
}

Result<std::string> PartitionKeyFromValue(const expr::Value& v) {
  if (v.is_string()) return *v.string_value();
  AUSDB_ASSIGN_OR_RETURN(double kd, v.AsDouble());
  return std::to_string(kd);
}

std::optional<KeyWindowState::Aggregate> KeyWindowState::Observe(
    const WindowEntry& e, const WindowAggregateOptions& options) {
  window.push_back(e);
  sum_mean.Add(e.mean);
  sum_variance.Add(e.variance);

  if (options.kind == WindowKind::kTumbling) {
    if (window.size() < options.window_size) return std::nullopt;
  } else {
    if (window.size() > options.window_size) {
      const WindowEntry& old = window.front();
      sum_mean.Subtract(old.mean);
      sum_variance.Subtract(old.variance);
      window.pop_front();
    }
    if (window.size() < options.window_size && !options.emit_partial) {
      return std::nullopt;
    }
  }

  const double w = static_cast<double>(window.size());
  Aggregate agg;
  agg.mean = sum_mean.Get();
  agg.variance = sum_variance.Get();
  if (options.fn == WindowAggFn::kAvg) {
    agg.mean /= w;
    agg.variance /= w * w;
  }
  // Per-key windows are small-to-moderate; a linear scan for the
  // minimum sample size keeps the per-partition state simple.
  agg.df = dist::RandomVar::kCertainSampleSize;
  for (const WindowEntry& entry : window) {
    agg.df = std::min(agg.df, entry.sample_size);
  }

  if (options.kind == WindowKind::kTumbling) {
    window.clear();
    sum_mean.Reset();
    sum_variance.Reset();
  }
  return agg;
}

KeyWindowState::Aggregate KeyWindowState::ScratchAggregate(
    const WindowAggregateOptions& options) const {
  double sum_m = 0.0, sum_v = 0.0;
  Aggregate agg;
  agg.df = dist::RandomVar::kCertainSampleSize;
  for (const WindowEntry& entry : window) {
    sum_m += entry.mean;
    sum_v += entry.variance;
    agg.df = std::min(agg.df, entry.sample_size);
  }
  const double w = static_cast<double>(window.size());
  agg.mean = sum_m;
  agg.variance = sum_v;
  if (options.fn == WindowAggFn::kAvg && !window.empty()) {
    agg.mean /= w;
    agg.variance /= w * w;
  }
  return agg;
}

std::optional<KeyWindowState::Emission> KeyWindowState::ObserveRevising(
    const WindowEntry& e, const WindowAggregateOptions& options,
    bool* shed_late) {
  if (shed_late != nullptr) *shed_late = false;
  const bool late = any_observed && e.sequence < max_sequence;

  if (!late) {
    any_observed = true;
    max_sequence = e.sequence;
    window.push_back(e);
    if (window.size() > options.window_size) {
      evicted_horizon = window.front().sequence;
      any_evicted = true;
      window.pop_front();
    }
    if (window.size() < options.window_size && !options.emit_partial) {
      return std::nullopt;
    }
    return Emission{ScratchAggregate(options), /*revision=*/false};
  }

  // Late arrival: only the *current* window is revisable (bounded
  // memory). Entries at/below the eviction horizon have slid past.
  if (any_evicted && e.sequence <= evicted_horizon) {
    if (shed_late != nullptr) *shed_late = true;
    return std::nullopt;
  }
  auto pos = window.end();
  while (pos != window.begin() && (pos - 1)->sequence > e.sequence) {
    --pos;
  }
  window.insert(pos, e);
  if (window.size() > options.window_size) {
    const uint64_t displaced = window.front().sequence;
    evicted_horizon = displaced;
    any_evicted = true;
    window.pop_front();
    if (displaced == e.sequence) {
      // The straggler was older than everything retained: displaced
      // right back out, no state change to re-emit.
      if (shed_late != nullptr) *shed_late = true;
      return std::nullopt;
    }
  }
  if (window.size() < options.window_size && !options.emit_partial) {
    // Nothing was emitted for this span yet; the late entry simply
    // joins the still-filling window.
    return std::nullopt;
  }
  return Emission{ScratchAggregate(options), /*revision=*/true};
}

}  // namespace engine
}  // namespace ausdb
