#include "src/engine/executor.h"

namespace ausdb {
namespace engine {

Result<std::vector<Tuple>> Collect(Operator& root) {
  std::vector<Tuple> out;
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) return out;
    out.push_back(std::move(*t));
  }
}

Result<size_t> Drain(Operator& root) {
  size_t count = 0;
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) return count;
    ++count;
  }
}

Result<std::vector<Tuple>> CollectLimit(Operator& root, size_t limit) {
  std::vector<Tuple> out;
  while (out.size() < limit) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) break;
    out.push_back(std::move(*t));
  }
  return out;
}

}  // namespace engine
}  // namespace ausdb
