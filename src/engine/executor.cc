#include "src/engine/executor.h"

#include <algorithm>

#include "src/common/thread_pool.h"

namespace ausdb {
namespace engine {

namespace {

/// Binds a pool to the plan for one drain and unbinds on scope exit, so
/// a failed Collect never leaves a dangling pool pointer in the tree.
class ScopedPoolBinding {
 public:
  ScopedPoolBinding(Operator& root, ThreadPool& pool) : root_(root) {
    root_.BindThreadPool(&pool);
  }
  ~ScopedPoolBinding() { root_.BindThreadPool(nullptr); }

 private:
  Operator& root_;
};

}  // namespace

Result<std::vector<Tuple>> ParallelCollect(Operator& root,
                                           ThreadPool& pool) {
  ScopedPoolBinding binding(root, pool);
  return Collect(root);
}

size_t DeterministicBatchSize(const Operator& plan) {
  // ~4096 values per batch keeps a morsel inside L2 for typical tuple
  // widths; the clamp bounds dispatch amortization (lower) and batch
  // memory (upper). Depends only on the plan's output schema.
  const size_t fields = std::max<size_t>(1, plan.schema().num_fields());
  const size_t rows = 4096 / fields;
  return std::clamp(rows, kMinBatchRows, kMaxBatchRows);
}

Result<std::vector<Tuple>> BatchCollect(Operator& root) {
  const size_t batch_size = DeterministicBatchSize(root);
  std::vector<Tuple> out;
  TupleBatch batch;
  for (;;) {
    AUSDB_RETURN_NOT_OK(root.NextBatch(batch_size, batch));
    if (batch.empty()) return out;
    for (Tuple& t : batch.rows()) out.push_back(std::move(t));
  }
}

Result<size_t> BatchDrain(Operator& root) {
  const size_t batch_size = DeterministicBatchSize(root);
  size_t count = 0;
  TupleBatch batch;
  for (;;) {
    AUSDB_RETURN_NOT_OK(root.NextBatch(batch_size, batch));
    if (batch.empty()) return count;
    count += batch.size();
  }
}

Result<std::vector<Tuple>> ParallelBatchCollect(Operator& root,
                                                ThreadPool& pool) {
  ScopedPoolBinding binding(root, pool);
  return BatchCollect(root);
}

Result<size_t> ParallelBatchDrain(Operator& root, ThreadPool& pool) {
  ScopedPoolBinding binding(root, pool);
  return BatchDrain(root);
}

Result<size_t> ParallelDrain(Operator& root, ThreadPool& pool) {
  ScopedPoolBinding binding(root, pool);
  return Drain(root);
}

Result<std::vector<Tuple>> Collect(Operator& root) {
  std::vector<Tuple> out;
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) return out;
    out.push_back(std::move(*t));
  }
}

Result<size_t> Drain(Operator& root) {
  size_t count = 0;
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) return count;
    ++count;
  }
}

namespace {

Status MaybeCheckpoint(Operator& root, size_t every_n, size_t emitted,
                       CheckpointSink& sink) {
  if (every_n == 0 || emitted % every_n != 0) return Status::OK();
  AUSDB_ASSIGN_OR_RETURN(std::string blob, root.SaveCheckpoint());
  return sink.Write(emitted, blob);
}

}  // namespace

Result<std::vector<Tuple>> CollectWithCheckpoints(Operator& root,
                                                  size_t every_n,
                                                  CheckpointSink& sink) {
  if (every_n == 0) {
    return Status::InvalidArgument("checkpoint interval must be >= 1");
  }
  std::vector<Tuple> out;
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) return out;
    out.push_back(std::move(*t));
    AUSDB_RETURN_NOT_OK(MaybeCheckpoint(root, every_n, out.size(), sink));
  }
}

Result<size_t> DrainWithCheckpoints(Operator& root, size_t every_n,
                                    CheckpointSink& sink) {
  if (every_n == 0) {
    return Status::InvalidArgument("checkpoint interval must be >= 1");
  }
  size_t count = 0;
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) return count;
    ++count;
    AUSDB_RETURN_NOT_OK(MaybeCheckpoint(root, every_n, count, sink));
  }
}

Result<std::vector<Tuple>> CollectLimit(Operator& root, size_t limit) {
  std::vector<Tuple> out;
  while (out.size() < limit) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, root.Next());
    if (!t.has_value()) break;
    out.push_back(std::move(*t));
  }
  return out;
}

}  // namespace engine
}  // namespace ausdb
