#ifndef AUSDB_ENGINE_PROJECT_H_
#define AUSDB_ENGINE_PROJECT_H_

#include <string>
#include <vector>

#include "src/engine/operator.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"

namespace ausdb {
namespace engine {

/// One SELECT-list item: an expression and its output column name.
struct ProjectionItem {
  std::string name;
  expr::ExprPtr expression;
};

/// \brief Infers the static output type of `e` against `input` — used to
/// build projection schemas. Numeric expressions referencing at least one
/// uncertain column are kUncertain; PROB(...) is kDouble; significance
/// predicates and accuracy projections are kString (their rendered
/// outcome); deterministic comparisons are kBool.
Result<FieldType> InferType(const expr::Expr& e, const Schema& input);

/// \brief Projection: evaluates each item per input tuple (the SELECT
/// list).
///
/// Tuple uncertainty (membership probability and its d.f. provenance)
/// passes through unchanged; attribute uncertainty flows through the
/// evaluator, which propagates d.f. sample sizes by Lemma 3.
class Project final : public Operator {
 public:
  /// Fails (at first Next()) if an item fails to evaluate. Type inference
  /// failures surface from Make().
  static Result<std::unique_ptr<Project>> Make(
      OperatorPtr child, std::vector<ProjectionItem> items,
      expr::EvalOptions eval_options = {});

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  /// Native batch pull: child batch in, items evaluated row-major in
  /// arrival order (same evaluator state sequence as the scalar path).
  Status NextBatch(size_t max_n, TupleBatch& out) override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

 private:
  Project(OperatorPtr child, std::vector<ProjectionItem> items,
          Schema schema, expr::EvalOptions eval_options);

  /// Evaluates the SELECT list against one input row.
  Result<Tuple> ProjectOne(const Tuple& t);

  OperatorPtr child_;
  TupleBatch input_;  // scratch child batch, reused across pulls
  std::vector<ProjectionItem> items_;
  Schema schema_;
  expr::Evaluator evaluator_;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_PROJECT_H_
