#ifndef AUSDB_ENGINE_SORT_H_
#define AUSDB_ENGINE_SORT_H_

#include <string>
#include <vector>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// Sort direction.
enum class SortOrder { kAscending, kDescending };

/// \brief ORDER BY: materializes the (finite) input and emits it sorted
/// by one column.
///
/// Deterministic numeric columns sort by value and strings
/// lexicographically; uncertain columns sort by their expectation (the
/// natural ranking for distributions, matching probabilistic top-k
/// practice). The input stream must be finite — sorting an unbounded
/// stream without a window is rejected by construction elsewhere; here
/// the materialization simply never finishes if misused.
class Sort final : public Operator {
 public:
  static Result<std::unique_ptr<Sort>> Make(
      OperatorPtr child, std::string column,
      SortOrder order = SortOrder::kAscending);

  const Schema& schema() const override { return child_->schema(); }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

 private:
  Sort(OperatorPtr child, size_t column_index, SortOrder order)
      : child_(std::move(child)),
        column_index_(column_index),
        order_(order) {}

  Status Materialize();

  OperatorPtr child_;
  size_t column_index_;
  SortOrder order_;
  bool materialized_ = false;
  std::vector<Tuple> sorted_;
  size_t pos_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_SORT_H_
