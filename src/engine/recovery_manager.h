#ifndef AUSDB_ENGINE_RECOVERY_MANAGER_H_
#define AUSDB_ENGINE_RECOVERY_MANAGER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/replayable.h"
#include "src/obs/clock.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serde/checkpoint_file.h"

namespace ausdb {
namespace engine {

/// Options of RecoveryManager.
struct RecoveryManagerOptions {
  /// Checkpoint generations retained (>= 2 gives corruption fallback).
  size_t keep_generations = 3;

  /// Crash sites injected into checkpoint writes; nullptr in production.
  CrashPointInjector* crash_points = nullptr;

  /// When non-null, checkpoint/restore activity is recorded as
  /// `ausdb_recovery_*` metrics (and `ausdb_checkpoint_*` in the
  /// underlying store). Write-only: recovery decisions never consult a
  /// metric. The registry and clock must outlive the manager.
  obs::MetricRegistry* metrics = nullptr;
  const obs::Clock* clock = obs::SteadyClock::Instance();

  /// When non-null, Checkpoint() and Restore() record spans here.
  obs::TraceBuffer* trace = nullptr;

  /// When non-null, each successful Checkpoint() (kCheckpoint) and
  /// Restore() (kRestore) is journaled with the checkpoint generation
  /// as logical time. Write-only per the obs contract.
  obs::EventJournal* journal = nullptr;
};

/// \brief Whole-pipeline crash recovery: one durable manifest per
/// checkpoint, holding every registered operator's state blob, every
/// registered source's replay position, and the consumer's delivery
/// count.
///
/// The recovery contract has three legs, and the manager owns their
/// composition:
///   1. operators restore their internal state bit-for-bit
///      (Operator::SaveCheckpoint/RestoreCheckpoint),
///   2. sources re-seek to the recorded position and replay the exact
///      input stream (ReplayableSource::SeekTo),
///   3. the consumer, which survives outside the crashed process,
///      compares its own delivered count against the manifest's
///      `outputs_delivered` and discards the re-emitted overlap.
/// A pipeline restored this way produces output bit-identical to an
/// uninterrupted run — the property the crash-point sweep test asserts
/// for every possible crash instant.
///
/// All state is snapshotted into ONE manifest written atomically
/// (serde::CheckpointStorage), so recovery never sees operator state
/// from one instant and source positions from another. Restore() walks
/// generations newest-first and applies the first manifest that both
/// decodes intact and restores cleanly; corrupt or torn newer
/// generations degrade recovery (more replay), never break it.
///
/// Register operators in a fixed order and with stable names; a
/// restarted process must register the identically configured pipeline
/// before calling Restore().
class RecoveryManager {
 public:
  RecoveryManager(std::string directory,
                  RecoveryManagerOptions options = {});

  /// Registers a replayable source under a stable unique name.
  /// The pointer must outlive the manager.
  Status RegisterSource(std::string name, ReplayableSource* source);

  /// Registers a checkpointable operator under a stable unique name.
  /// The pointer must outlive the manager. Stateless operators (filters,
  /// projections) need no registration: they are pure functions of the
  /// replayed stream.
  Status RegisterOperator(std::string name, Operator* op);

  /// Snapshots every registered source position and operator state plus
  /// the consumer's `outputs_delivered` into the next durable
  /// checkpoint generation. Returns the generation number.
  Result<uint64_t> Checkpoint(uint64_t outputs_delivered);

  /// What Restore() recovered.
  struct RecoveredState {
    uint64_t generation = 0;
    /// Outputs the consumer had already received when the checkpoint was
    /// taken; the pipeline re-emits exactly the outputs from this count
    /// onward (after the consumer discards the re-emitted overlap).
    uint64_t outputs_delivered = 0;
  };

  /// Restores the newest recoverable checkpoint: walks generations
  /// newest-first, and for each one that decodes intact restores all
  /// operator states and re-seeks all sources. Returns nullopt when no
  /// generation is recoverable (fresh start: nothing was modified).
  /// Failed attempts never leave mixed state behind, because the next
  /// attempt (or a fresh start after Reset) overwrites everything a
  /// manifest touches.
  Result<std::optional<RecoveredState>> Restore();

  /// The underlying generation store (tests corrupt files through it).
  serde::CheckpointStorage& storage() { return storage_; }

  /// \brief Accounting hook for the recovery contract's third leg: the
  /// consumer calls this once per re-emitted output it discards as
  /// already delivered (its own count minus the manifest's
  /// `outputs_delivered`). Feeds `ausdb_recovery_replayed_outputs_total`
  /// so a snapshot shows exactly how much replay a restore cost; no-op
  /// without a registry.
  void NoteReplayedOutput(uint64_t count = 1);

 private:
  Result<std::string> EncodeManifest(uint64_t outputs_delivered) const;
  Status ApplyManifest(std::string_view payload,
                       uint64_t* outputs_delivered);

  serde::CheckpointStorage storage_;
  std::vector<std::pair<std::string, ReplayableSource*>> sources_;
  std::vector<std::pair<std::string, Operator*>> operators_;

  RecoveryManagerOptions options_;
  /// Registry-owned; all null when options_.metrics is null.
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_restores_ = nullptr;
  obs::Counter* m_restore_fallbacks_ = nullptr;
  obs::Counter* m_replayed_outputs_ = nullptr;
  obs::Histogram* m_checkpoint_seconds_ = nullptr;
  obs::Histogram* m_restore_seconds_ = nullptr;
  obs::Gauge* m_outputs_delivered_ = nullptr;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_RECOVERY_MANAGER_H_
