#ifndef AUSDB_ENGINE_BATCH_H_
#define AUSDB_ENGINE_BATCH_H_

#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/engine/schema.h"
#include "src/engine/tuple.h"

namespace ausdb {
namespace engine {

/// \brief A morsel of tuples pulled through Operator::NextBatch — row
/// storage plus an optional struct-of-arrays view over the numeric
/// attributes.
///
/// The rows are the source of truth: they carry every field (strings,
/// random variables, membership probabilities, accuracy annotations)
/// exactly as the tuple-at-a-time path would. GatherColumns() additionally
/// materializes each kDouble field of a schema as one contiguous double
/// array, which is what lets the per-batch inner loops (CDF evaluation,
/// window-entry extraction, threshold predicates) run over flat spans the
/// compiler can auto-vectorize instead of chasing row pointers. Column
/// slices are a *copy-out* view — mutate rows, not slices; slices are
/// invalidated by any row mutation and rebuilt by the next Gather.
class TupleBatch {
 public:
  TupleBatch() = default;

  std::vector<Tuple>& rows() { return rows_; }
  const std::vector<Tuple>& rows() const { return rows_; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Drops all rows and column slices; keeps capacity for reuse across
  /// pulls (batches are pulled in a hot loop — no per-batch allocation
  /// once the pipeline has warmed up).
  void Clear() {
    rows_.clear();
    InvalidateColumns();
  }

  /// \brief Builds one contiguous double slice per kDouble field of
  /// `schema` from the current rows. Rows whose value at a kDouble field
  /// is not a double (schema violation) fail with TypeError. Idempotent
  /// until InvalidateColumns()/Clear().
  Status GatherColumns(const Schema& schema);

  /// True when GatherColumns has run for the current rows.
  bool columns_gathered() const { return gathered_; }

  /// The gathered slice of field `field_index`, one double per row, or an
  /// empty span when the field was not gathered (non-double field, or
  /// GatherColumns not called).
  std::span<const double> Column(size_t field_index) const;

  /// Forgets the SoA view (call after mutating rows).
  void InvalidateColumns() {
    gathered_ = false;
    for (auto& s : slices_) s.values.clear();
  }

 private:
  struct Slice {
    size_t field_index;
    std::vector<double> values;
  };

  std::vector<Tuple> rows_;
  std::vector<Slice> slices_;
  bool gathered_ = false;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_BATCH_H_
