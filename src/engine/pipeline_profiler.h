#ifndef AUSDB_ENGINE_PIPELINE_PROFILER_H_
#define AUSDB_ENGINE_PIPELINE_PROFILER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/operator.h"
#include "src/obs/clock.h"

namespace ausdb {
namespace engine {

/// \brief Per-operator counters accumulated by a Profile() wrapper.
///
/// The first block is the determinism contract of EXPLAIN ANALYZE:
/// every field is advanced only by pull events (calls, emitted tuples,
/// failed pulls) — pure functions of the delivered tuple sequence, so
/// two runs of the same pipeline produce identical counters across
/// thread counts, prefetch depths, batch sizes of *this* operator's
/// consumer, and metrics on/off.
///
/// The latency fields are the clearly-separated non-deterministic
/// annex: wall-clock samples on the injected obs::Clock, taken once
/// every `latency_sample_period` pulls. They never appear in
/// CountersJson()/ReportString(); LatencyAnnexString() renders them
/// behind an explicit "non-deterministic" banner.
struct OperatorProfile {
  std::string name;
  uint64_t next_calls = 0;   ///< scalar pull attempts
  uint64_t batch_calls = 0;  ///< batch pull attempts
  uint64_t tuples = 0;       ///< tuples emitted (batch rows included)
  uint64_t errors = 0;       ///< failed pulls (non-OK status)

  // --- non-deterministic annex (sampled wall clock) ---
  uint64_t latency_samples = 0;
  uint64_t sampled_nanos = 0;
};

/// \brief The accumulator shared by every Profile() wrapper of one
/// pipeline: one slot per wrapped operator, registered bottom-up as the
/// planner builds the chain, so slot i's input is slot i-1's output and
/// per-stage selectivity is tuples[i] / tuples[i-1].
///
/// Not thread-safe by design: the Volcano pull loop drives the whole
/// operator chain from the single consumer thread (intra-operator
/// parallelism lives *below* the operator API), so plain counters
/// suffice and the profiled hot path stays a handful of increments.
class PipelineProfile {
 public:
  /// Registers one operator slot; returns its index. Call in
  /// bottom-up (leaf to root) pipeline order.
  size_t AddOperator(std::string name);

  OperatorProfile& slot(size_t index) { return slots_[index]; }
  const std::vector<OperatorProfile>& operators() const { return slots_; }

  /// \brief Byte-deterministic JSON of the deterministic counters only:
  ///   {"operators":[{"name":"source","next_calls":N,"batch_calls":N,
  ///    "tuples":N,"errors":N},...]}
  /// The EXPLAIN ANALYZE determinism harness compares this string
  /// across thread counts, prefetch depths, and metrics settings.
  std::string CountersJson() const;

  /// Deterministic one-line-per-operator report, root first, with
  /// per-stage selectivity (tuples out / tuples in from the slot
  /// below). Numbers render via obs::FormatMetricValue.
  std::string ReportString() const;

  /// The non-deterministic annex: sampled Next() latency per operator.
  /// Kept out of every deterministic rendering above.
  std::string LatencyAnnexString() const;

 private:
  std::vector<OperatorProfile> slots_;
};

/// \brief The EXPLAIN ANALYZE operator wrapper: forwards the child's
/// outcome bit-for-bit (tuples, errors, end-of-stream, checkpoints)
/// while accumulating its slot in a PipelineProfile. The sibling of
/// InstrumentedOperator with a per-query accumulator instead of a
/// process-wide registry — the two compose (a plan can be both
/// instrumented and profiled) because both are write-only wrappers.
class ProfiledOperator final : public Operator {
 public:
  /// Latency is sampled once every this many pulls by default — same
  /// budget reasoning as InstrumentedOperator.
  static constexpr uint32_t kDefaultLatencySamplePeriod = 16;

  /// `profile` must outlive the operator; `slot` is the index returned
  /// by PipelineProfile::AddOperator. A null `clock` disables the
  /// latency annex entirely (counters still accumulate).
  ProfiledOperator(OperatorPtr child, PipelineProfile* profile, size_t slot,
                   const obs::Clock* clock = nullptr,
                   uint32_t latency_sample_period =
                       kDefaultLatencySamplePeriod);

  const Schema& schema() const override { return child_->schema(); }
  Result<std::optional<Tuple>> Next() override;
  /// Forwards the child's native batch path; one batch_call per pull,
  /// `tuples` advances by the batch size.
  Status NextBatch(size_t max_n, TupleBatch& out) override;
  Status Reset() override { return child_->Reset(); }
  Status Close() override { return child_->Close(); }
  Result<std::string> SaveCheckpoint() const override {
    return child_->SaveCheckpoint();
  }
  Status RestoreCheckpoint(std::string_view blob) override {
    return child_->RestoreCheckpoint(blob);
  }
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

 private:
  OperatorPtr child_;
  PipelineProfile* profile_;
  const size_t slot_;
  const obs::Clock* clock_;
  const uint32_t latency_sample_period_;
  uint64_t call_index_ = 0;
};

/// Registers `op_name` in `profile` and wraps `child` when `profile` is
/// non-null; returns the child untouched (zero overhead, identical
/// object) when profiling is off.
OperatorPtr Profile(OperatorPtr child, const std::string& op_name,
                    PipelineProfile* profile,
                    const obs::Clock* clock = nullptr,
                    uint32_t latency_sample_period =
                        ProfiledOperator::kDefaultLatencySamplePeriod);

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_PIPELINE_PROFILER_H_
