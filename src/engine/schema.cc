#include "src/engine/schema.h"

#include <sstream>

namespace ausdb {
namespace engine {

std::string_view FieldTypeToString(FieldType type) {
  switch (type) {
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
    case FieldType::kBool:
      return "bool";
    case FieldType::kUncertain:
      return "uncertain";
  }
  return "unknown";
}

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) {
    // Duplicates in a constructor argument are a programming error; the
    // incremental AddField path reports them as Status instead.
    names_.push_back(f.name);
    fields_.push_back(std::move(f));
  }
}

Status Schema::AddField(Field field) {
  if (Contains(field.name)) {
    return Status::AlreadyExists("field '" + field.name +
                                 "' already in schema");
  }
  names_.push_back(field.name);
  fields_.push_back(std::move(field));
  return Status::OK();
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("field '" + name + "' not in schema " +
                          ToString());
}

bool Schema::Contains(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << FieldTypeToString(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace engine
}  // namespace ausdb
