#include "src/engine/filter.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/dist/conditioning.h"
#include "src/expr/analyzer.h"

namespace ausdb {
namespace engine {

namespace {

// Recognizes `column cmp constant` (either side) and returns the open
// interval (lo, hi] the predicate confines the column to, or nullopt.
// kEq/kNe are not range events and are skipped.
struct RangeEvent {
  std::string column;
  double lo;
  double hi;
};

std::optional<RangeEvent> ExtractRangeEvent(const expr::Expr& pred) {
  if (pred.kind() != expr::ExprKind::kCompare) return std::nullopt;
  const auto& cmp = static_cast<const expr::CompareExpr&>(pred);

  const expr::Expr* column_side = cmp.lhs().get();
  const expr::Expr* const_side = cmp.rhs().get();
  bool flipped = false;
  if (column_side->kind() != expr::ExprKind::kColumnRef) {
    std::swap(column_side, const_side);
    flipped = true;
  }
  if (column_side->kind() != expr::ExprKind::kColumnRef ||
      const_side->kind() != expr::ExprKind::kLiteral) {
    return std::nullopt;
  }
  const auto& lit = static_cast<const expr::LiteralExpr&>(*const_side);
  if (!lit.value().is_double()) return std::nullopt;
  const double c = *lit.value().double_value();

  expr::CmpOp op = cmp.op();
  if (flipped) {
    switch (op) {
      case expr::CmpOp::kLt:
        op = expr::CmpOp::kGt;
        break;
      case expr::CmpOp::kLe:
        op = expr::CmpOp::kGe;
        break;
      case expr::CmpOp::kGt:
        op = expr::CmpOp::kLt;
        break;
      case expr::CmpOp::kGe:
        op = expr::CmpOp::kLe;
        break;
      default:
        break;
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  RangeEvent event;
  event.column =
      static_cast<const expr::ColumnRefExpr&>(*column_side).name();
  switch (op) {
    case expr::CmpOp::kGt:
    case expr::CmpOp::kGe:
      event.lo = c;
      event.hi = kInf;
      return event;
    case expr::CmpOp::kLt:
    case expr::CmpOp::kLe:
      event.lo = -kInf;
      event.hi = c;
      return event;
    default:
      return std::nullopt;
  }
}

}  // namespace

Filter::Filter(OperatorPtr child, expr::ExprPtr predicate,
               FilterOptions options)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      options_(options),
      evaluator_(options.eval) {}

Result<bool> Filter::ApplyOne(Tuple& t) {
  AUSDB_ASSIGN_OR_RETURN(
      expr::PredicateOutcome outcome,
      evaluator_.EvaluatePredicate(*predicate_, t.AsRow(schema())));

  if (outcome.significance.has_value()) {
    // Significance predicate: three-state decision.
    const auto sig = *outcome.significance;
    if (sig == hypothesis::TestOutcome::kUnsure) {
      ++unsure_count_;
      if (!options_.keep_unsure) return false;
    } else if (sig == hypothesis::TestOutcome::kFalse) {
      return false;
    }
    t.set_significance(sig);
    return true;
  }

  if (outcome.probability <= options_.min_probability ||
      outcome.probability <= 0.0) {
    return false;
  }

  // Possible-world semantics: the tuple survives with the predicate's
  // probability folded into its membership probability.
  t.set_membership_prob(t.membership_prob() * outcome.probability);
  t.set_membership_df_n(
      std::min(t.membership_df_n(), outcome.df_sample_size));

  if (options_.condition_distributions) {
    if (auto event = ExtractRangeEvent(*predicate_)) {
      auto idx = schema().IndexOf(event->column);
      if (idx.ok()) {
        const expr::Value& v = t.value(*idx);
        if (v.is_random_var()) {
          AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
          if (!rv.is_certain()) {
            AUSDB_ASSIGN_OR_RETURN(
                dist::DistributionPtr conditioned,
                dist::ConditionBetween(*rv.distribution(), event->lo,
                                       event->hi));
            t.values()[*idx] = expr::Value(dist::RandomVar(
                std::move(conditioned), rv.sample_size()));
          }
        }
      }
    }
  }
  return true;
}

Result<std::optional<Tuple>> Filter::Next() {
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
    AUSDB_ASSIGN_OR_RETURN(bool keep, ApplyOne(*t));
    if (keep) return t;
  }
}

Status Filter::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  // Pull child batches until at least one row survives (or end of
  // stream): an empty output batch must mean exhaustion, never just an
  // unlucky morsel.
  for (;;) {
    AUSDB_RETURN_NOT_OK(child_->NextBatch(max_n, input_));
    if (input_.empty()) return Status::OK();
    for (Tuple& t : input_.rows()) {
      AUSDB_ASSIGN_OR_RETURN(bool keep, ApplyOne(t));
      if (keep) out.rows().push_back(std::move(t));
    }
    if (!out.empty()) return Status::OK();
  }
}

Status Filter::Reset() {
  unsure_count_ = 0;
  return child_->Reset();
}

}  // namespace engine
}  // namespace ausdb
