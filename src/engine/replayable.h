#ifndef AUSDB_ENGINE_REPLAYABLE_H_
#define AUSDB_ENGINE_REPLAYABLE_H_

#include <cstdint>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief A source operator whose stream can be replayed from any
/// position — the contract crash recovery rests on.
///
/// Operator checkpoints capture only operator-internal state; the input
/// tuples a restarted pipeline feeds them must come from the source
/// re-producing its stream. A ReplayableSource promises exactly that:
/// after SeekTo(p), the tuples produced are bit-identical to the ones an
/// uninterrupted run produced from position p onward — same values, same
/// sequence numbers. Deterministic generators honor the contract by
/// re-running their seeded generation path and discarding the first p
/// tuples (a generator whose draws cache internal state, like the polar
/// Gaussian sampler, cannot skip arithmetic ahead safely); file readers
/// honor it by remembering record offsets.
class ReplayableSource : public Operator {
 public:
  /// Tuples produced so far: the position to record in a checkpoint.
  virtual uint64_t position() const = 0;

  /// Rewinds/advances so the next Next() produces the tuple an
  /// uninterrupted run would have produced as number `position`
  /// (0-based). Seeking past the end of a bounded stream is
  /// InvalidArgument.
  virtual Status SeekTo(uint64_t position) = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_REPLAYABLE_H_
