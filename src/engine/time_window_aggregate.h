#ifndef AUSDB_ENGINE_TIME_WINDOW_AGGREGATE_H_
#define AUSDB_ENGINE_TIME_WINDOW_AGGREGATE_H_

#include <deque>
#include <limits>
#include <string>

#include "src/engine/operator.h"
#include "src/engine/window_aggregate.h"

namespace ausdb {
namespace engine {

/// Options of the TimeWindowAggregate operator.
struct TimeWindowOptions {
  /// Window duration, in the timestamp column's units: an arriving tuple
  /// with timestamp t aggregates all tuples with timestamp in
  /// (t - duration, t].
  double duration = 60.0;

  WindowAggFn fn = WindowAggFn::kAvg;

  /// As in WindowAggregateOptions: approximate non-Gaussian uncertain
  /// inputs by the CLT instead of failing.
  bool allow_clt_approximation = false;

  /// Require non-decreasing timestamps (stream order). When false,
  /// out-of-order tuples are accepted and evicted by value.
  bool require_ordered = true;
};

/// \brief Time-based (RANGE) sliding-window aggregate over one uncertain
/// column: the duration-based sibling of the count-based WindowAggregate.
///
/// The timestamp column must be a deterministic double. One output tuple
/// is produced per input, with schema (<output_name>:uncertain).
class TimeWindowAggregate final : public Operator {
 public:
  static Result<std::unique_ptr<TimeWindowAggregate>> Make(
      OperatorPtr child, std::string timestamp_column,
      std::string value_column, std::string output_name,
      TimeWindowOptions options = {});

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

 private:
  struct Entry {
    double timestamp;
    double mean;
    double variance;
    size_t sample_size;
  };

  TimeWindowAggregate(OperatorPtr child, size_t ts_index,
                      size_t value_index, Schema out_schema,
                      TimeWindowOptions options);

  OperatorPtr child_;
  size_t ts_index_;
  size_t value_index_;
  Schema schema_;
  TimeWindowOptions options_;
  std::deque<Entry> window_;
  double last_timestamp_ = -std::numeric_limits<double>::infinity();
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_TIME_WINDOW_AGGREGATE_H_
