#ifndef AUSDB_ENGINE_TIME_WINDOW_AGGREGATE_H_
#define AUSDB_ENGINE_TIME_WINDOW_AGGREGATE_H_

#include <deque>
#include <limits>
#include <string>

#include "src/engine/operator.h"
#include "src/engine/window_aggregate.h"
#include "src/obs/event_journal.h"

namespace ausdb {
namespace engine {

/// Options of the TimeWindowAggregate operator.
struct TimeWindowOptions {
  /// Window duration, in the timestamp column's units: an arriving tuple
  /// with timestamp t aggregates all tuples with timestamp in
  /// (t - duration, t].
  double duration = 60.0;

  WindowAggFn fn = WindowAggFn::kAvg;

  /// As in WindowAggregateOptions: approximate non-Gaussian uncertain
  /// inputs by the CLT instead of failing.
  bool allow_clt_approximation = false;

  /// Require non-decreasing timestamps (stream order). When false,
  /// out-of-order tuples are accepted and evicted by value.
  bool require_ordered = true;

  /// Event-time revision mode: emit (agg, window_end, revision) tuples,
  /// and accept late tuples up to `allowed_lateness` behind the max
  /// observed timestamp by re-emitting every already-emitted window the
  /// straggler falls into with corrected mean/variance/sample_size and
  /// revision=true. Requires require_ordered=false. Downstream folds by
  /// window_end keeping the last output: after all revisions, the fold
  /// is byte-identical to what in-order delivery would have produced.
  bool emit_revisions = false;

  /// Lateness horizon of revision mode, in timestamp units: a tuple
  /// more than this behind the max observed timestamp is shed (counted
  /// in shed_late()), because the entries needed to revise its windows
  /// have already been retired. Only meaningful with emit_revisions.
  double allowed_lateness = 0.0;

  /// When non-null, each late arrival that forces window re-emissions
  /// is journaled as kLateRevision with the input-tuple count as
  /// logical time. Write-only per the obs contract.
  obs::EventJournal* journal = nullptr;
};

/// \brief Time-based (RANGE) sliding-window aggregate over one uncertain
/// column: the duration-based sibling of the count-based WindowAggregate.
///
/// The timestamp column must be a deterministic double. One output tuple
/// is produced per input, with schema (<output_name>:uncertain) — or, in
/// revision mode, (<output_name>:uncertain, window_end:double,
/// revision:bool), where a late arrival additionally re-emits each
/// affected window.
///
/// Determinism contract (revision mode): the window entry set is kept
/// sorted by (timestamp, sequence) and every emission recomputes its
/// aggregate by one scan over that ordering, so an output for window
/// end W depends only on the *set* of entries in (W-duration, W] —
/// never on arrival order — and revision folds are bit-identical across
/// disorder within the lateness bound.
class TimeWindowAggregate final : public Operator {
 public:
  static Result<std::unique_ptr<TimeWindowAggregate>> Make(
      OperatorPtr child, std::string timestamp_column,
      std::string value_column, std::string output_name,
      TimeWindowOptions options = {});

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

  /// Checkpoints the open window, the revisable-window bookkeeping and
  /// any undelivered revision outputs (format token "twagg.v1") so a
  /// restored pipeline resumes bit-for-bit mid-disorder.
  Result<std::string> SaveCheckpoint() const override;
  Status RestoreCheckpoint(std::string_view blob) override;

  /// Child tuples pulled so far — the input position a re-seeked source
  /// must resume after when restoring this operator's checkpoint.
  uint64_t input_consumed() const { return input_consumed_; }

  /// Late tuples beyond the allowed-lateness horizon, dropped.
  uint64_t shed_late() const { return shed_late_; }

 private:
  struct Entry {
    double timestamp;
    double mean;
    double variance;
    size_t sample_size;
    uint64_t sequence;
  };

  /// One computed (possibly revision) output awaiting delivery.
  struct Output {
    double window_end;
    double mean;
    double variance;
    size_t df;
    bool revision;
    uint64_t sequence;
    double membership_prob;
    size_t membership_df_n;
  };

  TimeWindowAggregate(OperatorPtr child, size_t ts_index,
                      size_t value_index, Schema out_schema,
                      TimeWindowOptions options);

  Result<std::optional<Tuple>> NextLegacy();
  Result<std::optional<Tuple>> NextRevising();
  Result<Entry> ExtractEntry(const Tuple& t, double ts) const;
  /// Inserts keeping window_ sorted by (timestamp, sequence).
  void InsertSorted(const Entry& e);
  /// Aggregate over entries with timestamp in (end - duration, end],
  /// scanned in the deque's (timestamp, sequence) order.
  Output ComputeWindow(double window_end, bool revision,
                       const Tuple& trigger) const;
  Tuple MaterializeOutput(const Output& o) const;

  OperatorPtr child_;
  size_t ts_index_;
  size_t value_index_;
  Schema schema_;
  TimeWindowOptions options_;
  std::deque<Entry> window_;
  double last_timestamp_ = -std::numeric_limits<double>::infinity();
  uint64_t input_consumed_ = 0;
  uint64_t shed_late_ = 0;
  /// Revision mode: distinct emitted window ends still inside the
  /// allowed-lateness horizon (ascending), and computed outputs not yet
  /// delivered through Next().
  std::deque<double> emitted_ends_;
  std::deque<Output> pending_;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_TIME_WINDOW_AGGREGATE_H_
