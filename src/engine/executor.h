#ifndef AUSDB_ENGINE_EXECUTOR_H_
#define AUSDB_ENGINE_EXECUTOR_H_

#include <vector>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief Pulls every tuple out of `root` into a vector (batch
/// execution / tests).
Result<std::vector<Tuple>> Collect(Operator& root);

/// \brief Pulls and discards every tuple, returning the count — the
/// throughput-measurement path (no materialization cost).
Result<size_t> Drain(Operator& root);

/// \brief Pulls at most `limit` tuples.
Result<std::vector<Tuple>> CollectLimit(Operator& root, size_t limit);

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_EXECUTOR_H_
