#ifndef AUSDB_ENGINE_EXECUTOR_H_
#define AUSDB_ENGINE_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/engine/operator.h"

namespace ausdb {
namespace engine {

/// \brief Pulls every tuple out of `root` into a vector (batch
/// execution / tests).
Result<std::vector<Tuple>> Collect(Operator& root);

/// \brief Pulls and discards every tuple, returning the count — the
/// throughput-measurement path (no materialization cost).
Result<size_t> Drain(Operator& root);

/// \brief Pulls at most `limit` tuples.
Result<std::vector<Tuple>> CollectLimit(Operator& root, size_t limit);

/// \brief The executor's batch size for `plan`: a pure function of the
/// plan shape (its output schema width), never of timing or machine —
/// the same determinism rule the chunked parallel layer follows. Wide
/// schemas get smaller batches so a batch stays cache-resident; the
/// result is always in [kMinBatchRows, kMaxBatchRows].
size_t DeterministicBatchSize(const Operator& plan);

inline constexpr size_t kMinBatchRows = 64;
inline constexpr size_t kMaxBatchRows = 1024;

/// \brief Collect driven through NextBatch at DeterministicBatchSize:
/// byte-identical output to Collect (the batch contract), one virtual
/// dispatch per batch instead of per tuple.
Result<std::vector<Tuple>> BatchCollect(Operator& root);

/// \brief Drain variant of BatchCollect.
Result<size_t> BatchDrain(Operator& root);

/// \brief BatchCollect with `pool` bound to the plan for the duration of
/// the drain (see ParallelCollect); batched + parallel output is still
/// bit-identical to plain Collect.
Result<std::vector<Tuple>> ParallelBatchCollect(Operator& root,
                                                ThreadPool& pool);

/// \brief Drain variant of ParallelBatchCollect.
Result<size_t> ParallelBatchDrain(Operator& root, ThreadPool& pool);

/// \brief Collect with `pool` bound to the plan for the duration of the
/// drain: parallel-aware operators (e.g.
/// ShardedPartitionedWindowAggregate) fan their work across the pool's
/// workers. Under the determinism contract the result is bit-identical
/// to plain Collect at any pool size. The binding is removed before
/// returning.
Result<std::vector<Tuple>> ParallelCollect(Operator& root, ThreadPool& pool);

/// \brief Drain variant of ParallelCollect.
Result<size_t> ParallelDrain(Operator& root, ThreadPool& pool);

/// \brief Destination of periodic operator checkpoints: a durable store
/// in production (file, replicated log), an in-memory slot in tests.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;

  /// Persists one checkpoint. `tuples_emitted` is how many output tuples
  /// `root` had produced when the snapshot was taken — the restore
  /// position a re-seeked source must resume after.
  virtual Status Write(uint64_t tuples_emitted, const std::string& blob) = 0;
};

/// \brief Keeps only the latest checkpoint, in memory.
class InMemoryCheckpointSink final : public CheckpointSink {
 public:
  Status Write(uint64_t tuples_emitted, const std::string& blob) override {
    last_tuples_emitted_ = tuples_emitted;
    last_blob_ = blob;
    ++writes_;
    return Status::OK();
  }

  bool has_checkpoint() const { return writes_ > 0; }
  uint64_t last_tuples_emitted() const { return last_tuples_emitted_; }
  const std::string& last_blob() const { return last_blob_; }
  size_t writes() const { return writes_; }

 private:
  uint64_t last_tuples_emitted_ = 0;
  std::string last_blob_;
  size_t writes_ = 0;
};

/// \brief Like Collect, but snapshots `root`'s state (SaveCheckpoint)
/// into `sink` after every `every_n` output tuples. `root` must support
/// checkpointing; a sink write failure aborts execution (a checkpoint
/// the operator cannot durably record is not a checkpoint).
Result<std::vector<Tuple>> CollectWithCheckpoints(Operator& root,
                                                  size_t every_n,
                                                  CheckpointSink& sink);

/// \brief Drain variant of CollectWithCheckpoints.
Result<size_t> DrainWithCheckpoints(Operator& root, size_t every_n,
                                    CheckpointSink& sink);

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_EXECUTOR_H_
