#include "src/engine/project.h"

#include "src/expr/analyzer.h"

namespace ausdb {
namespace engine {

Result<FieldType> InferType(const expr::Expr& e, const Schema& input) {
  using expr::ExprKind;
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const auto& v = static_cast<const expr::LiteralExpr&>(e).value();
      switch (v.type()) {
        case expr::ValueType::kDouble:
          return FieldType::kDouble;
        case expr::ValueType::kString:
          return FieldType::kString;
        case expr::ValueType::kBool:
          return FieldType::kBool;
        default:
          return Status::TypeError("untyped literal in projection");
      }
    }
    case ExprKind::kColumnRef: {
      const auto& name = static_cast<const expr::ColumnRefExpr&>(e).name();
      AUSDB_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(name));
      return input.field(idx).type;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const expr::UnaryExpr&>(e);
      if (u.op() == expr::UnaryOp::kNot) return FieldType::kBool;
      return InferType(*u.operand(), input);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const expr::BinaryExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(FieldType lhs, InferType(*b.lhs(), input));
      AUSDB_ASSIGN_OR_RETURN(FieldType rhs, InferType(*b.rhs(), input));
      if (lhs == FieldType::kString || rhs == FieldType::kString) {
        return Status::TypeError("arithmetic over strings: " +
                                 e.ToString());
      }
      if (lhs == FieldType::kUncertain || rhs == FieldType::kUncertain) {
        return FieldType::kUncertain;
      }
      return FieldType::kDouble;
    }
    case ExprKind::kCompare:
    case ExprKind::kLogical:
    case ExprKind::kProbThreshold:
      return FieldType::kBool;
    case ExprKind::kProbOf:
      return FieldType::kDouble;
    case ExprKind::kMTest:
    case ExprKind::kMdTest:
    case ExprKind::kPTest:
      // Rendered three-state outcome.
      return FieldType::kString;
    case ExprKind::kAccuracyOf:
      return FieldType::kString;
  }
  return Status::Internal("unhandled expression kind in InferType");
}

Result<std::unique_ptr<Project>> Project::Make(
    OperatorPtr child, std::vector<ProjectionItem> items,
    expr::EvalOptions eval_options) {
  if (items.empty()) {
    return Status::InvalidArgument("projection needs at least one item");
  }
  Schema schema;
  for (const auto& item : items) {
    if (item.expression == nullptr) {
      return Status::InvalidArgument("projection item '" + item.name +
                                     "' has no expression");
    }
    AUSDB_ASSIGN_OR_RETURN(FieldType type,
                           InferType(*item.expression, child->schema()));
    AUSDB_RETURN_NOT_OK(schema.AddField({item.name, type}));
  }
  return std::unique_ptr<Project>(new Project(
      std::move(child), std::move(items), std::move(schema), eval_options));
}

Project::Project(OperatorPtr child, std::vector<ProjectionItem> items,
                 Schema schema, expr::EvalOptions eval_options)
    : child_(std::move(child)),
      items_(std::move(items)),
      schema_(std::move(schema)),
      evaluator_(eval_options) {}

Result<Tuple> Project::ProjectOne(const Tuple& t) {
  const expr::Row row = t.AsRow(child_->schema());
  std::vector<expr::Value> out_values;
  out_values.reserve(items_.size());
  for (const auto& item : items_) {
    AUSDB_ASSIGN_OR_RETURN(expr::Value v,
                           evaluator_.Evaluate(*item.expression, row));
    out_values.push_back(std::move(v));
  }
  Tuple out(std::move(out_values));
  out.set_membership_prob(t.membership_prob());
  out.set_membership_df_n(t.membership_df_n());
  out.set_sequence(t.sequence());
  if (t.significance().has_value()) {
    out.set_significance(*t.significance());
  }
  return out;
}

Result<std::optional<Tuple>> Project::Next() {
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
  AUSDB_ASSIGN_OR_RETURN(Tuple out, ProjectOne(*t));
  return std::optional<Tuple>(std::move(out));
}

Status Project::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  AUSDB_RETURN_NOT_OK(child_->NextBatch(max_n, input_));
  out.rows().reserve(input_.size());
  for (const Tuple& t : input_.rows()) {
    AUSDB_ASSIGN_OR_RETURN(Tuple projected, ProjectOne(t));
    out.rows().push_back(std::move(projected));
  }
  return Status::OK();
}

Status Project::Reset() { return child_->Reset(); }

}  // namespace engine
}  // namespace ausdb
