#ifndef AUSDB_ENGINE_PARTITIONED_WINDOW_H_
#define AUSDB_ENGINE_PARTITIONED_WINDOW_H_

#include <string>
#include <unordered_map>

#include "src/engine/operator.h"
#include "src/engine/window_aggregate.h"
#include "src/engine/window_state.h"

namespace ausdb {
namespace engine {

/// \brief Per-key sliding/tumbling window aggregate — the GROUP BY form
/// of WindowAggregate.
///
/// Each distinct value of the key column (string or double, e.g. the
/// Road_ID of the paper's Example 1) maintains its own count-based
/// window; an output tuple (key, aggregate) is produced whenever some
/// key's window emits. Schema: (key:<key type>, <output_name>:uncertain)
/// — plus a trailing revision:bool column when
/// `options.emit_revisions` is set, in which case each key's window is
/// kept sorted by source sequence and a late arrival re-emits that key's
/// corrected current window with revision=true (see
/// KeyWindowState::ObserveRevising).
///
/// Running sums are Neumaier-compensated (see KeyWindowState), so the
/// evict-subtract update does not drift on long streams.
class PartitionedWindowAggregate final : public Operator {
 public:
  static Result<std::unique_ptr<PartitionedWindowAggregate>> Make(
      OperatorPtr child, std::string key_column, std::string agg_column,
      std::string output_name, WindowAggregateOptions options = {});

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

  /// Checkpointing serializes every partition's open window and exact
  /// running sums including the Neumaier compensation terms (keys
  /// sorted, so equal states produce equal blobs). Writes the v4 format
  /// (which adds per-entry sequences and the revision-mode
  /// bookkeeping); restores v4, v3 (no revision block), v2 (no input
  /// position either) and legacy v1 blobs (which carried no
  /// compensation terms either — those restore with zero compensation).
  Result<std::string> SaveCheckpoint() const override;
  Status RestoreCheckpoint(std::string_view blob) override;

  /// Number of distinct keys currently holding window state.
  size_t partition_count() const { return partitions_.size(); }

  /// Child tuples pulled so far — the input position a re-seeked source
  /// must resume after when restoring this operator's checkpoint.
  uint64_t input_consumed() const { return input_consumed_; }

  /// Revision mode: late tuples older than every retained position of
  /// their key's window, dropped (loudly) instead of revised.
  uint64_t shed_late() const { return shed_late_; }

 private:
  PartitionedWindowAggregate(OperatorPtr child, size_t key_index,
                             size_t agg_index, Schema out_schema,
                             WindowAggregateOptions options);

  OperatorPtr child_;
  size_t key_index_;
  size_t agg_index_;
  Schema schema_;
  WindowAggregateOptions options_;
  std::unordered_map<std::string, KeyWindowState> partitions_;
  uint64_t input_consumed_ = 0;
  uint64_t shed_late_ = 0;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_PARTITIONED_WINDOW_H_
