#ifndef AUSDB_ENGINE_SHARDED_PARTITIONED_WINDOW_H_
#define AUSDB_ENGINE_SHARDED_PARTITIONED_WINDOW_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/operator.h"
#include "src/engine/window_aggregate.h"
#include "src/engine/window_state.h"

namespace ausdb {
namespace engine {

/// Options of ShardedPartitionedWindowAggregate.
struct ShardedWindowOptions {
  /// The per-key window configuration (shared with the serial operator).
  WindowAggregateOptions window;

  /// Number of key shards. Partition keys are hash-assigned to shards
  /// with a platform-independent FNV-1a hash; each shard's states are
  /// touched by exactly one worker per batch, so shards never contend.
  /// The output is independent of the shard count (per-key arithmetic
  /// does not cross shards).
  size_t num_shards = 8;

  /// Input tuples pulled per processing batch. Larger batches amortize
  /// the fan-out/join cost per batch; emissions are re-merged in input
  /// order regardless.
  size_t batch_size = 1024;
};

/// \brief Parallel drop-in for PartitionedWindowAggregate: hash-shards
/// partition keys across worker-private state maps and merges emissions
/// in input-sequence order.
///
/// Determinism contract: output is bit-identical to the serial
/// PartitionedWindowAggregate for every thread count (including no bound
/// pool), because each key's window executes the identical
/// KeyWindowState arithmetic in input order and emissions are re-merged
/// by input position. Bind a pool via BindThreadPool (or
/// engine::ParallelCollect) to actually fan batches out.
///
/// With `options.window.emit_revisions` the schema gains a trailing
/// revision:bool column and each key's window revises on late (by
/// sequence) arrivals exactly as the serial operator does — the contract
/// extends to revision outputs and the shed_late() count.
class ShardedPartitionedWindowAggregate final : public Operator {
 public:
  static Result<std::unique_ptr<ShardedPartitionedWindowAggregate>> Make(
      OperatorPtr child, std::string key_column, std::string agg_column,
      std::string output_name, ShardedWindowOptions options = {});

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Tuple>> Next() override;
  Status Reset() override;
  void BindThreadPool(ThreadPool* pool) override {
    pool_ = pool;
    child_->BindThreadPool(pool);
  }

  Status Close() override { return child_->Close(); }

  /// Checkpointing covers every shard's partition states (keys globally
  /// sorted, Neumaier compensation terms included) plus the emissions
  /// already computed but not yet pulled, so a restore mid-batch resumes
  /// bit-for-bit. `input_consumed()` is the re-seek position for the
  /// source.
  Result<std::string> SaveCheckpoint() const override;
  Status RestoreCheckpoint(std::string_view blob) override;

  /// Number of distinct keys currently holding window state.
  size_t partition_count() const;

  /// Child tuples pulled so far — the input position a re-seeked source
  /// must resume after when restoring this operator's checkpoint.
  uint64_t input_consumed() const { return input_consumed_; }

  /// Revision mode: late tuples older than every retained position of
  /// their key's window, dropped (loudly) instead of revised.
  uint64_t shed_late() const { return shed_late_; }

 private:
  ShardedPartitionedWindowAggregate(OperatorPtr child, size_t key_index,
                                    size_t agg_index, Schema out_schema,
                                    ShardedWindowOptions options);

  /// Pulls one batch from the child, fans it across shards, and appends
  /// the batch's emissions to out_queue_ in input order.
  Status FillBatch();

  OperatorPtr child_;
  size_t key_index_;
  size_t agg_index_;
  Schema schema_;
  ShardedWindowOptions options_;
  ThreadPool* pool_ = nullptr;

  std::vector<std::unordered_map<std::string, KeyWindowState>> shards_;
  std::deque<Tuple> out_queue_;
  uint64_t input_consumed_ = 0;
  uint64_t shed_late_ = 0;
  bool exhausted_ = false;
};

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_SHARDED_PARTITIONED_WINDOW_H_
