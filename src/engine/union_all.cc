#include "src/engine/union_all.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<UnionAll>> UnionAll::Make(
    std::vector<OperatorPtr> children) {
  if (children.empty()) {
    return Status::InvalidArgument("UNION ALL needs at least one input");
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] == nullptr) {
      return Status::InvalidArgument("UNION ALL input is null");
    }
    if (!(children[i]->schema() == children[0]->schema())) {
      return Status::TypeError(
          "UNION ALL inputs must share a schema; input " +
          std::to_string(i) + " has " + children[i]->schema().ToString() +
          " vs " + children[0]->schema().ToString());
    }
  }
  return std::unique_ptr<UnionAll>(new UnionAll(std::move(children)));
}

Result<std::optional<Tuple>> UnionAll::Next() {
  while (current_ < children_.size()) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t,
                           children_[current_]->Next());
    if (t.has_value()) return t;
    ++current_;
  }
  return std::optional<Tuple>(std::nullopt);
}

Status UnionAll::Reset() {
  for (auto& child : children_) {
    AUSDB_RETURN_NOT_OK(child->Reset());
  }
  current_ = 0;
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
