#include "src/engine/reorder_buffer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/serde/checkpoint.h"
#include "src/serde/tuple_codec.h"

namespace ausdb {
namespace engine {

Result<std::unique_ptr<ReorderBuffer>> ReorderBuffer::Make(
    OperatorPtr child, std::string timestamp_column,
    ReorderBufferOptions options) {
  if (!std::isfinite(options.lateness_bound) ||
      options.lateness_bound < 0.0) {
    return Status::InvalidArgument(
        "reorder lateness bound must be finite and >= 0");
  }
  AUSDB_ASSIGN_OR_RETURN(size_t ts_idx,
                         child->schema().IndexOf(timestamp_column));
  if (child->schema().field(ts_idx).type != FieldType::kDouble) {
    return Status::TypeError("reorder timestamp column '" +
                             timestamp_column +
                             "' must be a deterministic double");
  }
  return std::unique_ptr<ReorderBuffer>(
      new ReorderBuffer(std::move(child), ts_idx, std::move(options)));
}

ReorderBuffer::ReorderBuffer(OperatorPtr child, size_t ts_index,
                             ReorderBufferOptions options)
    : child_(std::move(child)),
      ts_index_(ts_index),
      options_(std::move(options)),
      watermark_(stream::WatermarkPolicyOptions{options_.lateness_bound}) {
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"buffer", options_.metrics_label}};
    m_depth_ = options_.metrics->GetGauge(
        "ausdb_engine_reorder_depth", labels,
        "Tuples currently held by the reorder buffer");
    m_watermark_milli_ = options_.metrics->GetGauge(
        "ausdb_engine_reorder_watermark_event_time_milli", labels,
        "Current event-time watermark, in milli-units of the timestamp "
        "column");
    m_late_ = options_.metrics->GetCounter(
        "ausdb_engine_reorder_late_total", labels,
        "Tuples that arrived at/below the watermark (passed through "
        "late)");
    m_shed_ = options_.metrics->GetCounter(
        "ausdb_engine_reorder_shed_total", labels,
        "Tuples dropped by the shed-oldest overflow policy");
    m_forced_ = options_.metrics->GetCounter(
        "ausdb_engine_reorder_forced_release_total", labels,
        "Tuples released before their watermark by the block overflow "
        "policy");
    m_duplicates_ = options_.metrics->GetCounter(
        "ausdb_engine_reorder_duplicates_total", labels,
        "Tuples dropped by sequence-number dedupe");
    m_early_ = options_.metrics->GetCounter(
        "ausdb_engine_reorder_governed_early_release_total", labels,
        "Tuples released before the true watermark because a governed "
        "rung shortened the hold horizon");
    m_lag_ = options_.metrics->GetHistogram(
        "ausdb_engine_reorder_event_time_lag", labels,
        obs::DefaultEventTimeLagBoundaries(),
        "Arrival lag behind the max observed event time, in timestamp "
        "units");
  }
}

void ReorderBuffer::UpdateGauges() {
  if (m_depth_ != nullptr) {
    m_depth_->Set(static_cast<int64_t>(buffer_.size()));
  }
  if (m_watermark_milli_ != nullptr && watermark_.has_observation()) {
    m_watermark_milli_->Set(
        static_cast<int64_t>(watermark_.watermark() * 1000.0));
  }
}

ReorderBuffer::~ReorderBuffer() {
  // Hand every outstanding charge back so a torn-down plan leaves the
  // budget balanced for its successors.
  for (Held& held : buffer_) ReleaseCharge(held);
}

double ReorderBuffer::LatenessScaleFor(uint32_t rung) const {
  if (options_.ladder == nullptr || rung == 0) return 1.0;
  const auto& rungs = options_.ladder->rungs;
  if (rungs.empty()) return 1.0;
  return rungs[std::min<size_t>(rung, rungs.size() - 1)].lateness_scale;
}

double ReorderBuffer::EffectiveWatermark() const {
  const double wm = watermark_.watermark();
  if (!has_horizon_floor_) return wm;
  return std::max(wm, horizon_floor_);
}

void ReorderBuffer::ReleaseCharge(Held& held) {
  if (held.bytes != 0 && options_.memory_budget != nullptr) {
    options_.memory_budget->Release(held.bytes);
  }
  held.bytes = 0;
}

void ReorderBuffer::Insert(double ts, Tuple t, size_t bytes) {
  Held held{{ts, t.sequence()}, std::move(t), bytes};
  if (buffer_.empty() || !(held.key < buffer_.back().key)) {
    buffer_.push_back(std::move(held));
    return;
  }
  auto it = std::upper_bound(
      buffer_.begin(), buffer_.end(), held.key,
      [](const std::pair<double, uint64_t>& key, const Held& h) {
        return key < h.key;
      });
  buffer_.insert(it, std::move(held));
}

void ReorderBuffer::ReleaseUpToWatermark() {
  const double wm = watermark_.watermark();
  const double eff = EffectiveWatermark();
  while (!buffer_.empty() && buffer_.front().key.first <= eff) {
    if (buffer_.front().key.first > wm) {
      // Released ahead of the true watermark: the governed horizon cut
      // the hold short. A straggler this release outruns will surface
      // late downstream — precision shed, data kept.
      ++stats_.early_releases;
      if (m_early_ != nullptr) m_early_->Increment();
    }
    ReleaseCharge(buffer_.front());
    ready_.push_back(std::move(buffer_.front().tuple));
    buffer_.pop_front();
  }
}

void ReorderBuffer::EnforceCapacity() {
  if (options_.capacity == 0) return;
  while (buffer_.size() > options_.capacity) {
    ReleaseCharge(buffer_.front());
    if (options_.overflow == ReorderOverflowPolicy::kShedOldest) {
      buffer_.pop_front();
      ++stats_.shed;
      if (m_shed_ != nullptr) m_shed_->Increment();
    } else {
      ready_.push_back(std::move(buffer_.front().tuple));
      buffer_.pop_front();
      ++stats_.forced_releases;
      if (m_forced_ != nullptr) m_forced_->Increment();
    }
  }
}

void ReorderBuffer::PruneSeen() {
  const double horizon =
      watermark_.watermark() - options_.lateness_bound;
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->second < horizon) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::optional<Tuple>> ReorderBuffer::Next() {
  for (;;) {
    if (!ready_.empty()) {
      Tuple t = std::move(ready_.front());
      ready_.pop_front();
      UpdateGauges();
      return std::optional<Tuple>(std::move(t));
    }
    if (exhausted_) {
      if (!buffer_.empty()) {
        // End of stream: flush everything still held, in event-time
        // order.
        for (Held& held : buffer_) {
          ReleaseCharge(held);
          ready_.push_back(std::move(held.tuple));
        }
        buffer_.clear();
        continue;
      }
      return std::optional<Tuple>(std::nullopt);
    }

    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) {
      exhausted_ = true;
      continue;
    }
    AUSDB_ASSIGN_OR_RETURN(double ts, t->value(ts_index_).AsDouble());
    if (!std::isfinite(ts)) {
      return Status::InvalidArgument(
          "non-finite event timestamp in reorder buffer: " +
          t->value(ts_index_).ToString());
    }
    if (options_.dedupe_by_sequence) {
      auto [it, inserted] = seen_.try_emplace(t->sequence(), ts);
      if (!inserted) {
        ++stats_.duplicates;
        if (m_duplicates_ != nullptr) m_duplicates_->Increment();
        continue;
      }
    }
    ++stats_.admitted;
    if (m_lag_ != nullptr && watermark_.has_observation() &&
        ts < watermark_.max_timestamp()) {
      m_lag_->Record(watermark_.max_timestamp() - ts);
    }
    if (watermark_.IsLate(ts) ||
        (has_horizon_floor_ && ts <= horizon_floor_)) {
      // Beyond the reorder horizon (true or governed): cannot be put
      // back in order here; the downstream window's allowed-lateness
      // revision path owns it.
      ++stats_.late;
      if (m_late_ != nullptr) m_late_->Increment();
      UpdateGauges();
      return std::optional<Tuple>(std::move(*t));
    }
    size_t charged = 0;
    if (options_.memory_budget != nullptr) {
      charged = t->ApproxBytes();
      AUSDB_RETURN_NOT_OK(
          options_.memory_budget->TryReserve(charged, "reorder"));
    }
    // A governed rung shrinks this tuple's hold horizon; the floor it
    // sets is a pure function of the stamped tuple sequence, so release
    // decisions stay deterministic.
    bool floor_advanced = false;
    const double scale = LatenessScaleFor(t->precision_rung());
    if (scale < 1.0) {
      const double floor = ts - options_.lateness_bound * scale;
      if (!has_horizon_floor_ || floor > horizon_floor_) {
        has_horizon_floor_ = true;
        horizon_floor_ = floor;
        floor_advanced = true;
      }
    }
    Insert(ts, std::move(*t), charged);
    if (watermark_.Observe(ts) || floor_advanced) {
      ReleaseUpToWatermark();
      if (options_.dedupe_by_sequence) PruneSeen();
    }
    EnforceCapacity();
    UpdateGauges();
  }
}

Status ReorderBuffer::Reset() {
  for (Held& held : buffer_) ReleaseCharge(held);
  buffer_.clear();
  ready_.clear();
  seen_.clear();
  watermark_.Reset();
  exhausted_ = false;
  stats_ = ReorderStats{};
  has_horizon_floor_ = false;
  horizon_floor_ = 0.0;
  UpdateGauges();
  return child_->Reset();
}

Result<std::string> ReorderBuffer::SaveCheckpoint() const {
  serde::CheckpointWriter w;
  // Ungoverned buffers keep writing the legacy "rob.v1" record
  // byte-for-byte; a bound ladder adds the governed horizon floor,
  // without which a restore would replay release decisions at the full
  // horizon and diverge.
  const bool governed = options_.ladder != nullptr;
  w.Token(governed ? "rob.v2" : "rob.v1");
  w.Double(watermark_.max_timestamp());
  w.Uint(exhausted_ ? 1 : 0);
  w.Uint(stats_.admitted);
  w.Uint(stats_.late);
  w.Uint(stats_.shed);
  w.Uint(stats_.forced_releases);
  w.Uint(stats_.duplicates);
  if (governed) {
    w.Uint(stats_.early_releases);
    w.Uint(has_horizon_floor_ ? 1 : 0);
    w.Double(has_horizon_floor_ ? horizon_floor_ : 0.0);
  }
  w.Uint(buffer_.size());
  for (const Held& held : buffer_) {
    AUSDB_RETURN_NOT_OK(serde::WriteTupleCheckpoint(w, held.tuple));
  }
  w.Uint(ready_.size());
  for (const Tuple& tuple : ready_) {
    AUSDB_RETURN_NOT_OK(serde::WriteTupleCheckpoint(w, tuple));
  }
  w.Uint(seen_.size());
  for (const auto& [seq, ts] : seen_) {
    w.Uint(seq);
    w.Double(ts);
  }
  return std::move(w).Finish();
}

Status ReorderBuffer::RestoreCheckpoint(std::string_view blob) {
  serde::CheckpointReader r(blob);
  AUSDB_ASSIGN_OR_RETURN(std::string_view tag, r.NextToken());
  if (tag != "rob.v1" && tag != "rob.v2") {
    return Status::Corruption("unknown reorder-checkpoint tag");
  }
  const bool governed_blob = tag == "rob.v2";
  AUSDB_ASSIGN_OR_RETURN(double max_ts, r.NextDouble());
  AUSDB_ASSIGN_OR_RETURN(uint64_t exhausted, r.NextUint());
  ReorderStats stats;
  AUSDB_ASSIGN_OR_RETURN(stats.admitted, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(stats.late, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(stats.shed, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(stats.forced_releases, r.NextUint());
  AUSDB_ASSIGN_OR_RETURN(stats.duplicates, r.NextUint());
  bool has_floor = false;
  double floor = 0.0;
  if (governed_blob) {
    AUSDB_ASSIGN_OR_RETURN(stats.early_releases, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(uint64_t has_floor_raw, r.NextUint());
    has_floor = has_floor_raw != 0;
    AUSDB_ASSIGN_OR_RETURN(floor, r.NextDouble());
  }
  // The smallest buffered tuple encodes the "tup" header plus counts:
  // >= 16 bytes with separators.
  AUSDB_ASSIGN_OR_RETURN(uint64_t buffered, r.NextCount(16));
  std::deque<Held> buffer;
  for (uint64_t i = 0; i < buffered; ++i) {
    AUSDB_ASSIGN_OR_RETURN(Tuple t, serde::ReadTupleCheckpoint(r));
    if (ts_index_ >= t.num_values()) {
      return Status::Corruption(
          "reorder checkpoint tuple lacks the timestamp column");
    }
    AUSDB_ASSIGN_OR_RETURN(double ts, t.value(ts_index_).AsDouble());
    // Blobs written by SaveCheckpoint are already sorted; sort defensively
    // anyway so a hand-assembled blob cannot break the release invariant.
    Held held{{ts, t.sequence()}, std::move(t)};
    auto it = std::upper_bound(
        buffer.begin(), buffer.end(), held.key,
        [](const std::pair<double, uint64_t>& key, const Held& h) {
          return key < h.key;
        });
    buffer.insert(it, std::move(held));
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t ready, r.NextCount(16));
  std::deque<Tuple> ready_q;
  for (uint64_t i = 0; i < ready; ++i) {
    AUSDB_ASSIGN_OR_RETURN(Tuple t, serde::ReadTupleCheckpoint(r));
    ready_q.push_back(std::move(t));
  }
  AUSDB_ASSIGN_OR_RETURN(uint64_t seen_count, r.NextCount(4));
  std::map<uint64_t, double> seen;
  for (uint64_t i = 0; i < seen_count; ++i) {
    AUSDB_ASSIGN_OR_RETURN(uint64_t seq, r.NextUint());
    AUSDB_ASSIGN_OR_RETURN(double ts, r.NextDouble());
    seen.emplace(seq, ts);
  }
  // Swap the restored buffer in charge-coherently: hand back what the
  // old buffer held, then charge every restored tuple.
  if (options_.memory_budget != nullptr) {
    for (Held& held : buffer_) ReleaseCharge(held);
    for (size_t i = 0; i < buffer.size(); ++i) {
      buffer[i].bytes = buffer[i].tuple.ApproxBytes();
      Status st =
          options_.memory_budget->TryReserve(buffer[i].bytes, "reorder");
      if (!st.ok()) {
        buffer[i].bytes = 0;
        for (size_t j = 0; j < i; ++j) ReleaseCharge(buffer[j]);
        return st;
      }
    }
  }
  buffer_ = std::move(buffer);
  ready_ = std::move(ready_q);
  seen_ = std::move(seen);
  watermark_.RestoreFromMaxTimestamp(max_ts);
  exhausted_ = exhausted != 0;
  stats_ = stats;
  has_horizon_floor_ = has_floor;
  horizon_floor_ = floor;
  UpdateGauges();
  return Status::OK();
}

}  // namespace engine
}  // namespace ausdb
