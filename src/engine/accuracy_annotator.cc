#include "src/engine/accuracy_annotator.h"

#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/histogram.h"

namespace ausdb {
namespace engine {

AccuracyAnnotator::AccuracyAnnotator(OperatorPtr child,
                                     AccuracyAnnotatorOptions options)
    : child_(std::move(child)),
      options_(std::move(options)),
      rng_(options_.seed) {}

Result<accuracy::AccuracyInfo> AccuracyAnnotator::Annotate(
    const dist::RandomVar& rv) {
  if (options_.method == accuracy::AccuracyMethod::kAnalytical) {
    return accuracy::AnalyticalAccuracy(rv, options_.confidence);
  }

  // Bootstrap path. Histogram fields get per-bin intervals over their own
  // bin edges.
  std::span<const double> edges;
  if (rv.distribution()->kind() == dist::DistributionKind::kHistogram) {
    edges = static_cast<const dist::HistogramDist&>(*rv.distribution())
                .edges();
  }
  const size_t n = rv.sample_size();
  if (n == dist::RandomVar::kCertainSampleSize) {
    return Status::InsufficientData(
        "cannot bootstrap a deterministic field");
  }
  const auto& raw = rv.raw_sample();
  if (raw != nullptr && raw->size() >= 2 * n) {
    // The evaluator retained the Monte Carlo value sequence: feed it to
    // the algorithm directly (Section III-B, first category).
    return bootstrap::BootstrapAccuracyInfo(*raw, n, options_.confidence,
                                            edges);
  }
  // Second category: sample a fresh sequence from the distribution.
  return bootstrap::BootstrapAccuracyFromDistribution(
      *rv.distribution(), n, options_.bootstrap_resamples,
      options_.confidence, rng_, edges);
}

Status AccuracyAnnotator::ResolveColumns() {
  if (resolved_) return Status::OK();
  if (options_.columns.empty()) {
    for (size_t i = 0; i < schema().num_fields(); ++i) {
      if (schema().field(i).type == FieldType::kUncertain) {
        column_indices_.push_back(i);
      }
    }
  } else {
    for (const auto& name : options_.columns) {
      AUSDB_ASSIGN_OR_RETURN(size_t idx, schema().IndexOf(name));
      column_indices_.push_back(idx);
    }
  }
  resolved_ = true;
  return Status::OK();
}

Status AccuracyAnnotator::AnnotateTuple(Tuple& t) {
  for (size_t idx : column_indices_) {
    const expr::Value& v = t.value(idx);
    if (!v.is_random_var()) continue;
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
    if (rv.is_certain()) continue;
    AUSDB_ASSIGN_OR_RETURN(accuracy::AccuracyInfo info, Annotate(rv));
    t.set_accuracy(idx, std::move(info));
  }

  if (options_.annotate_membership &&
      t.membership_df_n() != dist::RandomVar::kCertainSampleSize) {
    AUSDB_ASSIGN_OR_RETURN(
        accuracy::ConfidenceInterval ci,
        accuracy::TupleProbabilityInterval(
            t.membership_prob(), t.membership_df_n(),
            options_.confidence));
    t.set_membership_ci(ci);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> AccuracyAnnotator::Next() {
  AUSDB_RETURN_NOT_OK(ResolveColumns());
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
  AUSDB_RETURN_NOT_OK(AnnotateTuple(*t));
  return t;
}

Status AccuracyAnnotator::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  AUSDB_RETURN_NOT_OK(ResolveColumns());
  AUSDB_RETURN_NOT_OK(child_->NextBatch(max_n, out));
  // Rows are annotated in arrival order: the bootstrap path draws from
  // rng_, so the per-tuple draw sequence must match the scalar path.
  for (Tuple& t : out.rows()) {
    AUSDB_RETURN_NOT_OK(AnnotateTuple(t));
  }
  out.InvalidateColumns();
  return Status::OK();
}

Status AccuracyAnnotator::Reset() { return child_->Reset(); }

}  // namespace engine
}  // namespace ausdb
