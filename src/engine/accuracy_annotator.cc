#include "src/engine/accuracy_annotator.h"

#include <algorithm>

#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/histogram.h"
#include "src/govern/precision.h"

namespace ausdb {
namespace engine {

AccuracyAnnotator::AccuracyAnnotator(OperatorPtr child,
                                     AccuracyAnnotatorOptions options)
    : child_(std::move(child)),
      options_(std::move(options)),
      rng_(options_.seed) {
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"plan", options_.metrics_label}};
    m_halfwidth_ = options_.metrics->GetHistogram(
        "ausdb_accuracy_halfwidth", labels,
        obs::DefaultHalfWidthBoundaries(),
        "Delivered mean-CI half-widths, in value units (the accuracy "
        "ledger)");
    m_annotated_ = options_.metrics->GetCounter(
        "ausdb_accuracy_annotated_fields_total", labels,
        "Uncertain fields annotated with accuracy information");
    m_target_misses_ = options_.metrics->GetCounter(
        "ausdb_accuracy_target_miss_total", labels,
        "Mean intervals delivered wider than the declared WITH ACCURACY "
        "epsilon");
  }
}

const govern::RungSpec* AccuracyAnnotator::RungSpecFor(
    const Tuple& t) const {
  if (options_.ladder == nullptr || t.precision_rung() == 0) {
    return nullptr;
  }
  const auto& rungs = options_.ladder->rungs;
  if (rungs.empty()) return nullptr;
  const govern::RungSpec& spec =
      rungs[std::min<size_t>(t.precision_rung(), rungs.size() - 1)];
  return spec.IsNeutral() ? nullptr : &spec;
}

Result<accuracy::AccuracyInfo> AccuracyAnnotator::Annotate(
    const dist::RandomVar& rv, const govern::RungSpec* spec,
    const govern::MethodSpec* chosen) {
  // Baseline method: the cost model's choice when a chooser is wired,
  // the fixed option otherwise. A force_analytical rung swaps bootstrap
  // for the Lemma 1-3 closed forms either way — the ladder's cheap-math
  // escape hatch under overload always overrides downward.
  const accuracy::AccuracyMethod base_method =
      chosen != nullptr ? chosen->method : options_.method;
  const bool analytical =
      base_method == accuracy::AccuracyMethod::kAnalytical ||
      (spec != nullptr && spec->force_analytical);
  if (analytical) {
    return accuracy::AnalyticalAccuracy(rv, options_.confidence);
  }

  // Bootstrap path. Histogram fields get per-bin intervals over their own
  // bin edges.
  std::span<const double> edges;
  if (rv.distribution()->kind() == dist::DistributionKind::kHistogram) {
    edges = static_cast<const dist::HistogramDist&>(*rv.distribution())
                .edges();
  }
  const size_t n = rv.sample_size();
  if (n == dist::RandomVar::kCertainSampleSize) {
    return Status::InsufficientData(
        "cannot bootstrap a deterministic field");
  }
  const size_t base_resamples =
      chosen != nullptr && chosen->is_bootstrap()
          ? chosen->bootstrap_resamples
          : options_.bootstrap_resamples;
  const size_t resamples =
      spec == nullptr ? base_resamples
                      : govern::EffectiveResamples(base_resamples,
                                                   spec->sample_scale);
  const auto& raw = rv.raw_sample();
  if (raw != nullptr && raw->size() >= 2 * n) {
    // The evaluator retained the Monte Carlo value sequence: feed it to
    // the algorithm directly (Section III-B, first category). Under a
    // degraded rung only a prefix covering the effective resamples is
    // examined — that is the work actually shed.
    std::span<const double> values(*raw);
    if (spec != nullptr) {
      values = values.first(
          std::min(values.size(), std::max(2 * n, n * resamples)));
    }
    return bootstrap::BootstrapAccuracyInfo(values, n, options_.confidence,
                                            edges);
  }
  // Second category: sample a fresh sequence from the distribution.
  return bootstrap::BootstrapAccuracyFromDistribution(
      *rv.distribution(), n, resamples, options_.confidence, rng_, edges);
}

Status AccuracyAnnotator::ResolveColumns() {
  if (resolved_) return Status::OK();
  if (options_.columns.empty()) {
    for (size_t i = 0; i < schema().num_fields(); ++i) {
      if (schema().field(i).type == FieldType::kUncertain) {
        column_indices_.push_back(i);
      }
    }
  } else {
    for (const auto& name : options_.columns) {
      AUSDB_ASSIGN_OR_RETURN(size_t idx, schema().IndexOf(name));
      column_indices_.push_back(idx);
    }
  }
  resolved_ = true;
  return Status::OK();
}

Status AccuracyAnnotator::AnnotateTuple(Tuple& t) {
  const govern::RungSpec* spec = RungSpecFor(t);
  // Snapshot the chooser's spec once per tuple so an epoch boundary
  // crossed mid-tuple cannot split one tuple across two configurations.
  govern::MethodSpec chosen;
  const bool has_chooser = options_.chooser != nullptr;
  if (has_chooser) chosen = options_.chooser->current();
  // Workload feedback accumulated from the variables actually
  // annotated: de facto provenance is the minimum over fields (the
  // Lemma 3 combination rule), dispersion and bin count the maximum
  // (conservative — the widest field dominates the target check).
  govern::WindowObservation obs;
  bool observed = false;
  for (size_t idx : column_indices_) {
    const expr::Value& v = t.value(idx);
    if (!v.is_random_var()) continue;
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
    if (rv.is_certain()) continue;
    if (has_chooser && chosen.histogram_merge > 1) {
      // The chooser's coarsening is applied exactly like a rung's: the
      // merged histogram is written back so the tuple carries the
      // representation its per-bin intervals describe.
      govern::RungSpec merge_only;
      merge_only.histogram_merge = chosen.histogram_merge;
      AUSDB_ASSIGN_OR_RETURN(rv, govern::DegradeRandomVar(rv, merge_only));
      t.values()[idx] = expr::Value(rv);
    }
    if (spec != nullptr) {
      // Degrade first, then write back: the tuple must carry exactly
      // the (coarsened, provenance-reduced) variable its intervals are
      // derived from — never a full-precision claim on shed work.
      AUSDB_ASSIGN_OR_RETURN(rv, govern::DegradeRandomVar(rv, *spec));
      t.values()[idx] = expr::Value(rv);
    }
    const size_t n = rv.sample_size();
    if (n != dist::RandomVar::kCertainSampleSize) {
      obs.cardinality = observed ? std::min(obs.cardinality, n) : n;
      obs.dispersion =
          observed ? std::max(obs.dispersion, rv.StdDev()) : rv.StdDev();
      if (!observed) obs.histogram_bins = 0;
      if (rv.distribution()->kind() == dist::DistributionKind::kHistogram) {
        obs.histogram_bins = std::max(
            obs.histogram_bins,
            static_cast<const dist::HistogramDist&>(*rv.distribution())
                .bin_count());
      }
      observed = true;
    }
    AUSDB_ASSIGN_OR_RETURN(
        accuracy::AccuracyInfo info,
        Annotate(rv, spec, has_chooser ? &chosen : nullptr));
    if (m_annotated_ != nullptr) {
      m_annotated_->Increment();
      if (info.mean_ci.has_value()) {
        const double half = info.mean_ci->Length() / 2.0;
        m_halfwidth_->Record(half);
        // The ledger's promise check: a delivered interval wider than
        // the declared epsilon is a target miss. Budget-only targets
        // (epsilon 0) promise no width; the chooser's default
        // (no SetTarget yet) epsilon is unbounded and never misses.
        const double eps =
            has_chooser ? options_.chooser->target().epsilon : 0.0;
        if (eps > 0.0 && half > eps) {
          m_target_misses_->Increment();
        }
      }
    }
    t.set_accuracy(idx, std::move(info));
  }
  if (has_chooser && observed) {
    // Content-derived feedback only (cardinality, dispersion, bins) —
    // never wall time — so recalibration epochs tick identically across
    // threads, metrics settings, and repetitions.
    options_.chooser->Observe(obs);
  }

  if (options_.annotate_membership &&
      t.membership_df_n() != dist::RandomVar::kCertainSampleSize) {
    // Rung-scaled membership provenance widens the tuple-probability
    // interval the same way it widens the field intervals.
    size_t membership_n = t.membership_df_n();
    if (spec != nullptr) {
      membership_n =
          govern::EffectiveSampleSize(membership_n, spec->sample_scale);
      t.set_membership_df_n(membership_n);
    }
    AUSDB_ASSIGN_OR_RETURN(
        accuracy::ConfidenceInterval ci,
        accuracy::TupleProbabilityInterval(
            t.membership_prob(), membership_n, options_.confidence));
    t.set_membership_ci(ci);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> AccuracyAnnotator::Next() {
  AUSDB_RETURN_NOT_OK(ResolveColumns());
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
  AUSDB_RETURN_NOT_OK(AnnotateTuple(*t));
  return t;
}

Status AccuracyAnnotator::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  AUSDB_RETURN_NOT_OK(ResolveColumns());
  AUSDB_RETURN_NOT_OK(child_->NextBatch(max_n, out));
  // Rows are annotated in arrival order: the bootstrap path draws from
  // rng_, so the per-tuple draw sequence must match the scalar path.
  for (Tuple& t : out.rows()) {
    AUSDB_RETURN_NOT_OK(AnnotateTuple(t));
  }
  out.InvalidateColumns();
  return Status::OK();
}

Status AccuracyAnnotator::Reset() { return child_->Reset(); }

}  // namespace engine
}  // namespace ausdb
