#include "src/engine/accuracy_annotator.h"

#include <algorithm>

#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/histogram.h"
#include "src/govern/precision.h"

namespace ausdb {
namespace engine {

AccuracyAnnotator::AccuracyAnnotator(OperatorPtr child,
                                     AccuracyAnnotatorOptions options)
    : child_(std::move(child)),
      options_(std::move(options)),
      rng_(options_.seed) {}

const govern::RungSpec* AccuracyAnnotator::RungSpecFor(
    const Tuple& t) const {
  if (options_.ladder == nullptr || t.precision_rung() == 0) {
    return nullptr;
  }
  const auto& rungs = options_.ladder->rungs;
  if (rungs.empty()) return nullptr;
  const govern::RungSpec& spec =
      rungs[std::min<size_t>(t.precision_rung(), rungs.size() - 1)];
  return spec.IsNeutral() ? nullptr : &spec;
}

Result<accuracy::AccuracyInfo> AccuracyAnnotator::Annotate(
    const dist::RandomVar& rv, const govern::RungSpec* spec) {
  // A force_analytical rung swaps bootstrap for the Lemma 1-3 closed
  // forms — the ladder's cheap-math escape hatch under overload.
  const bool analytical =
      options_.method == accuracy::AccuracyMethod::kAnalytical ||
      (spec != nullptr && spec->force_analytical);
  if (analytical) {
    return accuracy::AnalyticalAccuracy(rv, options_.confidence);
  }

  // Bootstrap path. Histogram fields get per-bin intervals over their own
  // bin edges.
  std::span<const double> edges;
  if (rv.distribution()->kind() == dist::DistributionKind::kHistogram) {
    edges = static_cast<const dist::HistogramDist&>(*rv.distribution())
                .edges();
  }
  const size_t n = rv.sample_size();
  if (n == dist::RandomVar::kCertainSampleSize) {
    return Status::InsufficientData(
        "cannot bootstrap a deterministic field");
  }
  const size_t resamples =
      spec == nullptr ? options_.bootstrap_resamples
                      : govern::EffectiveResamples(
                            options_.bootstrap_resamples,
                            spec->sample_scale);
  const auto& raw = rv.raw_sample();
  if (raw != nullptr && raw->size() >= 2 * n) {
    // The evaluator retained the Monte Carlo value sequence: feed it to
    // the algorithm directly (Section III-B, first category). Under a
    // degraded rung only a prefix covering the effective resamples is
    // examined — that is the work actually shed.
    std::span<const double> values(*raw);
    if (spec != nullptr) {
      values = values.first(
          std::min(values.size(), std::max(2 * n, n * resamples)));
    }
    return bootstrap::BootstrapAccuracyInfo(values, n, options_.confidence,
                                            edges);
  }
  // Second category: sample a fresh sequence from the distribution.
  return bootstrap::BootstrapAccuracyFromDistribution(
      *rv.distribution(), n, resamples, options_.confidence, rng_, edges);
}

Status AccuracyAnnotator::ResolveColumns() {
  if (resolved_) return Status::OK();
  if (options_.columns.empty()) {
    for (size_t i = 0; i < schema().num_fields(); ++i) {
      if (schema().field(i).type == FieldType::kUncertain) {
        column_indices_.push_back(i);
      }
    }
  } else {
    for (const auto& name : options_.columns) {
      AUSDB_ASSIGN_OR_RETURN(size_t idx, schema().IndexOf(name));
      column_indices_.push_back(idx);
    }
  }
  resolved_ = true;
  return Status::OK();
}

Status AccuracyAnnotator::AnnotateTuple(Tuple& t) {
  const govern::RungSpec* spec = RungSpecFor(t);
  for (size_t idx : column_indices_) {
    const expr::Value& v = t.value(idx);
    if (!v.is_random_var()) continue;
    AUSDB_ASSIGN_OR_RETURN(dist::RandomVar rv, v.random_var());
    if (rv.is_certain()) continue;
    if (spec != nullptr) {
      // Degrade first, then write back: the tuple must carry exactly
      // the (coarsened, provenance-reduced) variable its intervals are
      // derived from — never a full-precision claim on shed work.
      AUSDB_ASSIGN_OR_RETURN(rv, govern::DegradeRandomVar(rv, *spec));
      t.values()[idx] = expr::Value(rv);
    }
    AUSDB_ASSIGN_OR_RETURN(accuracy::AccuracyInfo info,
                           Annotate(rv, spec));
    t.set_accuracy(idx, std::move(info));
  }

  if (options_.annotate_membership &&
      t.membership_df_n() != dist::RandomVar::kCertainSampleSize) {
    // Rung-scaled membership provenance widens the tuple-probability
    // interval the same way it widens the field intervals.
    size_t membership_n = t.membership_df_n();
    if (spec != nullptr) {
      membership_n =
          govern::EffectiveSampleSize(membership_n, spec->sample_scale);
      t.set_membership_df_n(membership_n);
    }
    AUSDB_ASSIGN_OR_RETURN(
        accuracy::ConfidenceInterval ci,
        accuracy::TupleProbabilityInterval(
            t.membership_prob(), membership_n, options_.confidence));
    t.set_membership_ci(ci);
  }
  return Status::OK();
}

Result<std::optional<Tuple>> AccuracyAnnotator::Next() {
  AUSDB_RETURN_NOT_OK(ResolveColumns());
  AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
  if (!t.has_value()) return std::optional<Tuple>(std::nullopt);
  AUSDB_RETURN_NOT_OK(AnnotateTuple(*t));
  return t;
}

Status AccuracyAnnotator::NextBatch(size_t max_n, TupleBatch& out) {
  out.Clear();
  if (max_n == 0) {
    return Status::InvalidArgument("batch size must be >= 1");
  }
  AUSDB_RETURN_NOT_OK(ResolveColumns());
  AUSDB_RETURN_NOT_OK(child_->NextBatch(max_n, out));
  // Rows are annotated in arrival order: the bootstrap path draws from
  // rng_, so the per-tuple draw sequence must match the scalar path.
  for (Tuple& t : out.rows()) {
    AUSDB_RETURN_NOT_OK(AnnotateTuple(t));
  }
  out.InvalidateColumns();
  return Status::OK();
}

Status AccuracyAnnotator::Reset() { return child_->Reset(); }

}  // namespace engine
}  // namespace ausdb
