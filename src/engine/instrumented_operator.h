#ifndef AUSDB_ENGINE_INSTRUMENTED_OPERATOR_H_
#define AUSDB_ENGINE_INSTRUMENTED_OPERATOR_H_

#include <memory>
#include <string>

#include "src/engine/operator.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace engine {

/// \brief Opt-in per-operator instrumentation wrapper.
///
/// Wraps any operator and records, labeled by operator name:
///  - `ausdb_engine_tuples_total{operator=...}` — tuples emitted,
///  - `ausdb_engine_next_calls_total{operator=...}` — pull attempts,
///  - `ausdb_engine_next_errors_total{operator=...}` — failed pulls,
///  - `ausdb_engine_next_latency_seconds{operator=...}` — Next()
///    latency histogram on the injected obs::Clock, sampled: one call
///    in every `latency_sample_period` is timed (the counters remain
///    exact). Two clock reads per pull cost ~15-20% on a hot pipeline;
///    sampling keeps the wrapper inside the 5% overhead budget that
///    bench_obs_overhead enforces. Period 1 times every call.
///
/// The wrapper is strictly write-only into the metrics: it forwards the
/// child's outcome bit-for-bit (including errors and end-of-stream) and
/// never consults a metric or the clock to decide anything, so wrapping
/// cannot change delivered output — the instrumentation-equivalence
/// tests compare serialized bytes with and without wrappers. When
/// instrumentation is disabled, don't construct one: Instrument()
/// returns the child untouched for a null registry, leaving the data
/// path with zero added code.
///
/// Checkpoint/Reset/Close/BindThreadPool forward transparently, so a
/// wrapped stateful operator still checkpoints (register the WRAPPED
/// operator with RecoveryManager, or the wrapper — both see the same
/// blobs). Note the wrapper is not a ReplayableSource; wrap above
/// sources, not in place of them, when recovery is in play.
class InstrumentedOperator final : public Operator {
 public:
  /// Every `kDefaultLatencySamplePeriod`-th Next() is timed by default.
  static constexpr uint32_t kDefaultLatencySamplePeriod = 16;

  /// `registry` and `clock` must outlive the operator; `op_name` becomes
  /// the `operator` label value. `latency_sample_period` must be >= 1.
  InstrumentedOperator(OperatorPtr child, const std::string& op_name,
                       obs::MetricRegistry* registry,
                       const obs::Clock* clock =
                           obs::SteadyClock::Instance(),
                       uint32_t latency_sample_period =
                           kDefaultLatencySamplePeriod);

  const Schema& schema() const override { return child_->schema(); }
  Result<std::optional<Tuple>> Next() override;
  /// Forwards to the child's native batch path; one pull attempt is
  /// counted per batch and `tuples_total` advances by the batch size, so
  /// throughput metrics stay comparable across scalar and batched runs.
  Status NextBatch(size_t max_n, TupleBatch& out) override;
  Status Reset() override { return child_->Reset(); }
  Status Close() override { return child_->Close(); }
  Result<std::string> SaveCheckpoint() const override {
    return child_->SaveCheckpoint();
  }
  Status RestoreCheckpoint(std::string_view blob) override {
    return child_->RestoreCheckpoint(blob);
  }
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

 private:
  OperatorPtr child_;
  const obs::Clock* clock_;
  const uint32_t latency_sample_period_;
  uint64_t call_index_ = 0;
  obs::Counter* tuples_;
  obs::Counter* next_calls_;
  obs::Counter* next_errors_;
  obs::Histogram* next_latency_;
};

/// Wraps `child` when `registry` is non-null; returns it untouched
/// (zero overhead, identical object) when instrumentation is off.
OperatorPtr Instrument(OperatorPtr child, const std::string& op_name,
                       obs::MetricRegistry* registry,
                       const obs::Clock* clock =
                           obs::SteadyClock::Instance(),
                       uint32_t latency_sample_period =
                           InstrumentedOperator::kDefaultLatencySamplePeriod);

}  // namespace engine
}  // namespace ausdb

#endif  // AUSDB_ENGINE_INSTRUMENTED_OPERATOR_H_
