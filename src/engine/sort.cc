#include "src/engine/sort.h"

#include <algorithm>

namespace ausdb {
namespace engine {

Result<std::unique_ptr<Sort>> Sort::Make(OperatorPtr child,
                                         std::string column,
                                         SortOrder order) {
  AUSDB_ASSIGN_OR_RETURN(size_t idx, child->schema().IndexOf(column));
  const FieldType type = child->schema().field(idx).type;
  if (type == FieldType::kBool) {
    return Status::TypeError("cannot ORDER BY a boolean column");
  }
  return std::unique_ptr<Sort>(new Sort(std::move(child), idx, order));
}

Status Sort::Materialize() {
  sorted_.clear();
  for (;;) {
    AUSDB_ASSIGN_OR_RETURN(std::optional<Tuple> t, child_->Next());
    if (!t.has_value()) break;
    sorted_.push_back(std::move(*t));
  }

  // Sort key per tuple: strings compare lexicographically, numerics by
  // value, uncertain fields by expectation.
  const size_t idx = column_index_;
  const bool is_string =
      !sorted_.empty() && sorted_.front().value(idx).is_string();

  Status failure = Status::OK();
  const auto numeric_key = [idx, &failure](const Tuple& t) -> double {
    const expr::Value& v = t.value(idx);
    if (v.is_random_var()) {
      return v.random_var()->Mean();
    }
    auto d = v.AsDouble();
    if (!d.ok()) {
      if (failure.ok()) failure = d.status();
      return 0.0;
    }
    return *d;
  };

  if (is_string) {
    std::stable_sort(sorted_.begin(), sorted_.end(),
                     [idx](const Tuple& a, const Tuple& b) {
                       return *a.value(idx).string_value() <
                              *b.value(idx).string_value();
                     });
  } else {
    std::stable_sort(sorted_.begin(), sorted_.end(),
                     [&](const Tuple& a, const Tuple& b) {
                       return numeric_key(a) < numeric_key(b);
                     });
  }
  AUSDB_RETURN_NOT_OK(failure);
  if (order_ == SortOrder::kDescending) {
    std::reverse(sorted_.begin(), sorted_.end());
  }
  materialized_ = true;
  pos_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> Sort::Next() {
  if (!materialized_) {
    AUSDB_RETURN_NOT_OK(Materialize());
  }
  if (pos_ >= sorted_.size()) return std::optional<Tuple>(std::nullopt);
  return std::optional<Tuple>(sorted_[pos_++]);
}

Status Sort::Reset() {
  materialized_ = false;
  sorted_.clear();
  pos_ = 0;
  return child_->Reset();
}

}  // namespace engine
}  // namespace ausdb
