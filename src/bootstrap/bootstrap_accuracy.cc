#include "src/bootstrap/bootstrap_accuracy.h"

#include <algorithm>
#include <cmath>

#include "src/bootstrap/resampler.h"
#include "src/common/thread_pool.h"
#include "src/dist/learner.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ausdb {
namespace bootstrap {

namespace {

// The alpha-level percentile interval of a vector of statistic values:
// between the 100(1-alpha)/2 and 100(1+alpha)/2 percentiles (lines 12-15
// of the paper's algorithm).
accuracy::ConfidenceInterval PercentileInterval(std::vector<double> values,
                                                double confidence) {
  std::sort(values.begin(), values.end());
  accuracy::ConfidenceInterval ci;
  ci.lo = stats::QuantileOfSorted(values, (1.0 - confidence) / 2.0);
  ci.hi = stats::QuantileOfSorted(values, (1.0 + confidence) / 2.0);
  ci.confidence = confidence;
  return ci;
}

}  // namespace

Result<accuracy::AccuracyInfo> BootstrapAccuracyInfo(
    std::span<const double> values, size_t n, double confidence,
    std::span<const double> bin_edges) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  if (n == 0) {
    return Status::InvalidArgument("d.f. sample size must be >= 1");
  }
  const size_t m = values.size();
  const size_t r = m / n;  // line 1: number of d.f. resamples
  if (r < 2) {
    return Status::InsufficientData(
        "BOOTSTRAP-ACCURACY-INFO needs at least 2 complete d.f. "
        "resamples; got m=" +
        std::to_string(m) + " for n=" + std::to_string(n));
  }

  const size_t b = bin_edges.empty() ? 0 : bin_edges.size() - 1;
  std::vector<std::vector<double>> bin_heights(b);
  for (auto& v : bin_heights) v.reserve(r);
  std::vector<double> means;
  std::vector<double> variances;
  means.reserve(r);
  variances.reserve(r);

  for (size_t i = 0; i < r; ++i) {  // lines 2-11: each resample
    const std::span<const double> group = values.subspan(i * n, n);

    if (b > 0) {  // lines 6-8: per-bin frequency within the resample
      const std::vector<size_t> counts = dist::CountBins(group, bin_edges);
      for (size_t k = 0; k < b; ++k) {
        bin_heights[k].push_back(static_cast<double>(counts[k]) /
                                 static_cast<double>(n));
      }
    }

    // Lines 9-10: sample mean and (unbiased) sample variance. Computed
    // with a lean two-pass loop — this runs once per window result in
    // the streaming hot path, so the full higher-moment accumulator is
    // deliberately avoided.
    double mean = 0.0;
    for (double v : group) mean += v;
    mean /= static_cast<double>(n);
    double ss = 0.0;
    for (double v : group) ss += (v - mean) * (v - mean);
    means.push_back(mean);
    variances.push_back(n > 1 ? ss / static_cast<double>(n - 1) : 0.0);
  }

  accuracy::AccuracyInfo info;
  info.sample_size = n;
  info.method = accuracy::AccuracyMethod::kBootstrap;
  info.bin_cis.reserve(b);
  for (size_t k = 0; k < b; ++k) {  // lines 12-14
    info.bin_cis.push_back(
        PercentileInterval(std::move(bin_heights[k]), confidence));
  }
  // Line 15.
  info.mean_ci = PercentileInterval(std::move(means), confidence);
  info.variance_ci = PercentileInterval(std::move(variances), confidence);
  return info;
}

Result<accuracy::AccuracyInfo> BootstrapAccuracyFromDistribution(
    const dist::Distribution& d, size_t n, size_t num_resamples,
    double confidence, Rng& rng, std::span<const double> bin_edges) {
  if (n == 0 || num_resamples < 2) {
    return Status::InvalidArgument(
        "need n >= 1 and num_resamples >= 2 to bootstrap a distribution");
  }
  std::vector<double> values(n * num_resamples);
  for (double& v : values) v = d.Sample(rng);
  return BootstrapAccuracyInfo(values, n, confidence, bin_edges);
}

Result<accuracy::ConfidenceInterval> ClassicPercentileBootstrap(
    std::span<const double> sample, size_t num_resamples, double confidence,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng) {
  if (sample.empty()) {
    return Status::InsufficientData("cannot bootstrap an empty sample");
  }
  if (num_resamples < 2) {
    return Status::InvalidArgument("need at least 2 resamples");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  std::vector<double> stat_values;
  stat_values.reserve(num_resamples);
  std::vector<double> buffer(sample.size());
  for (size_t i = 0; i < num_resamples; ++i) {
    ResampleInto(sample, buffer, rng);
    stat_values.push_back(statistic(buffer));
  }
  return PercentileInterval(std::move(stat_values), confidence);
}

Result<accuracy::ConfidenceInterval> ParallelPercentileBootstrap(
    std::span<const double> sample, size_t num_resamples, double confidence,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, ThreadPool* pool) {
  if (sample.empty()) {
    return Status::InsufficientData("cannot bootstrap an empty sample");
  }
  if (num_resamples < 2) {
    return Status::InvalidArgument("need at least 2 resamples");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  // Per-resample seeds drawn serially so the fan-out cannot influence
  // the draws; statistic values land in per-resample slots, making the
  // interval identical at any thread count.
  std::vector<uint64_t> seeds(num_resamples);
  for (uint64_t& s : seeds) s = rng.NextUint64();
  std::vector<double> stat_values(num_resamples);
  RunChunked(pool, num_resamples, DeterministicChunkCount(num_resamples),
             [&](size_t, size_t begin, size_t end) {
               std::vector<double> buffer(sample.size());
               for (size_t i = begin; i < end; ++i) {
                 Rng child(seeds[i]);
                 ResampleInto(sample, buffer, child);
                 stat_values[i] = statistic(buffer);
               }
             });
  return PercentileInterval(std::move(stat_values), confidence);
}

}  // namespace bootstrap
}  // namespace ausdb
