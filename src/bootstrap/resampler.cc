#include "src/bootstrap/resampler.h"

#include "src/common/logging.h"

namespace ausdb {
namespace bootstrap {

std::vector<double> Resample(std::span<const double> sample, size_t size,
                             Rng& rng) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  std::vector<double> out(size);
  ResampleInto(sample, out, rng);
  return out;
}

void ResampleInto(std::span<const double> sample, std::span<double> out,
                  Rng& rng) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  const size_t n = sample.size();
  for (double& slot : out) slot = sample[rng.NextBelow(n)];
}

}  // namespace bootstrap
}  // namespace ausdb
