#include "src/bootstrap/resampler.h"

#include "src/common/logging.h"
#include "src/common/thread_pool.h"

namespace ausdb {
namespace bootstrap {

std::vector<double> Resample(std::span<const double> sample, size_t size,
                             Rng& rng) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  std::vector<double> out(size);
  ResampleInto(sample, out, rng);
  return out;
}

void ResampleInto(std::span<const double> sample, std::span<double> out,
                  Rng& rng) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  const size_t n = sample.size();
  for (double& slot : out) slot = sample[rng.NextBelow(n)];
}

std::vector<std::vector<double>> ResampleMany(
    std::span<const double> sample, size_t count, Rng& parent,
    ThreadPool* pool) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  // Per-resample seeds are drawn serially from the parent stream before
  // any fan-out, so the work partition cannot influence the draws.
  std::vector<uint64_t> seeds(count);
  for (uint64_t& s : seeds) s = parent.NextUint64();
  std::vector<std::vector<double>> out(count);
  RunChunked(pool, count, DeterministicChunkCount(count),
             [&](size_t, size_t begin, size_t end) {
               for (size_t i = begin; i < end; ++i) {
                 Rng rng(seeds[i]);
                 out[i] = Resample(sample, sample.size(), rng);
               }
             });
  return out;
}

}  // namespace bootstrap
}  // namespace ausdb
