#include "src/bootstrap/resampler.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"

namespace ausdb {
namespace bootstrap {

std::vector<double> Resample(std::span<const double> sample, size_t size,
                             Rng& rng) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  std::vector<double> out(size);
  ResampleInto(sample, out, rng);
  return out;
}

void ResampleInto(std::span<const double> sample, std::span<double> out,
                  Rng& rng) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  const size_t n = sample.size();
  // Index tile + gather: the generator draws stay sequential (the draw
  // order is the determinism contract), but splitting index generation
  // from the dependent load lets the gather pass pipeline instead of
  // serializing each load behind the next rng step.
  constexpr size_t kTile = 256;
  size_t idx[kTile];
  const double* src = sample.data();
  double* dst = out.data();
  for (size_t base = 0; base < out.size(); base += kTile) {
    const size_t tile = std::min(kTile, out.size() - base);
    for (size_t k = 0; k < tile; ++k) idx[k] = rng.NextBelow(n);
    for (size_t k = 0; k < tile; ++k) dst[base + k] = src[idx[k]];
  }
}

std::vector<std::vector<double>> ResampleMany(
    std::span<const double> sample, size_t count, Rng& parent,
    ThreadPool* pool) {
  AUSDB_CHECK(!sample.empty()) << "cannot resample an empty sample";
  // Per-resample seeds are drawn serially from the parent stream before
  // any fan-out, so the work partition cannot influence the draws.
  std::vector<uint64_t> seeds(count);
  for (uint64_t& s : seeds) s = parent.NextUint64();
  std::vector<std::vector<double>> out(count);
  RunChunked(pool, count, DeterministicChunkCount(count),
             [&](size_t, size_t begin, size_t end) {
               for (size_t i = begin; i < end; ++i) {
                 Rng rng(seeds[i]);
                 out[i] = Resample(sample, sample.size(), rng);
               }
             });
  return out;
}

}  // namespace bootstrap
}  // namespace ausdb
