#ifndef AUSDB_BOOTSTRAP_BOOTSTRAP_ACCURACY_H_
#define AUSDB_BOOTSTRAP_BOOTSTRAP_ACCURACY_H_

#include <functional>
#include <span>
#include <vector>

#include "src/accuracy/accuracy_info.h"
#include "src/accuracy/confidence_interval.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/dist/distribution.h"

namespace ausdb {

class ThreadPool;

namespace bootstrap {

/// \brief The paper's Algorithm BOOTSTRAP-ACCURACY-INFO (Section III-B).
///
/// `values` is the sequence of m values of an output random variable Y —
/// either produced directly by a Monte Carlo query processor or sampled
/// from a result distribution. `n` is Y's de facto sample size (Lemma 3).
/// The m values are grouped into r = floor(m/n) d.f. resamples of size n;
/// within each resample the statistics (bin heights over `bin_edges` if
/// provided, sample mean, sample variance) are computed, and the
/// `confidence`-level interval of each statistic is taken between the
/// (1-alpha)/2 and (1+alpha)/2 percentiles over the r resamples.
///
/// Fails with InsufficientData when fewer than 2 complete resamples fit
/// (m < 2n) and InvalidArgument on a bad confidence or n == 0.
Result<accuracy::AccuracyInfo> BootstrapAccuracyInfo(
    std::span<const double> values, size_t n, double confidence,
    std::span<const double> bin_edges = {});

/// \brief Convenience wrapper for the paper's "second category" of query
/// processing (operators that produce a distribution, not samples): draws
/// m = n * num_resamples values from `d` and runs BootstrapAccuracyInfo.
Result<accuracy::AccuracyInfo> BootstrapAccuracyFromDistribution(
    const dist::Distribution& d, size_t n, size_t num_resamples,
    double confidence, Rng& rng, std::span<const double> bin_edges = {});

/// \brief Classic single-sample percentile bootstrap of an arbitrary
/// statistic, for source-data accuracy and for the grouping ablation:
/// resamples `sample` (same size, with replacement) `num_resamples` times
/// and returns the percentile interval of `statistic` over the resamples.
Result<accuracy::ConfidenceInterval> ClassicPercentileBootstrap(
    std::span<const double> sample, size_t num_resamples, double confidence,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng);

/// \brief Parallel percentile bootstrap: the B resamples run across
/// `pool`'s workers, each on its own Rng stream seeded from a
/// per-resample seed drawn serially from `rng`.
///
/// Deterministic at any thread count — same seed, same interval, with
/// or without a pool — though the resample draws differ from
/// ClassicPercentileBootstrap's single shared stream (both are valid
/// bootstrap sequences). `statistic` must be thread-safe (pure).
Result<accuracy::ConfidenceInterval> ParallelPercentileBootstrap(
    std::span<const double> sample, size_t num_resamples, double confidence,
    const std::function<double(std::span<const double>)>& statistic,
    Rng& rng, ThreadPool* pool = nullptr);

}  // namespace bootstrap
}  // namespace ausdb

#endif  // AUSDB_BOOTSTRAP_BOOTSTRAP_ACCURACY_H_
