#ifndef AUSDB_BOOTSTRAP_RESAMPLER_H_
#define AUSDB_BOOTSTRAP_RESAMPLER_H_

#include <span>
#include <vector>

#include "src/common/rng.h"

namespace ausdb {

class ThreadPool;

namespace bootstrap {

/// \brief Draws a bootstrap resample: `size` draws uniformly at random
/// with replacement from `sample` (paper Section III-A step 1).
std::vector<double> Resample(std::span<const double> sample, size_t size,
                             Rng& rng);

/// Resample of the same size as the input, the standard bootstrap setting.
inline std::vector<double> Resample(std::span<const double> sample,
                                    Rng& rng) {
  return Resample(sample, sample.size(), rng);
}

/// \brief Fills `out` (already sized) with a resample; avoids per-call
/// allocation in hot loops such as the throughput benchmarks.
void ResampleInto(std::span<const double> sample, std::span<double> out,
                  Rng& rng);

/// \brief Draws `count` independent same-size resamples, optionally
/// fanned across `pool`.
///
/// Each resample i gets its own Rng stream seeded from a per-resample
/// seed drawn serially from `parent` (SplitMix64-expanded, so the
/// streams are uncorrelated), and results land in slot i — the output
/// is therefore identical at any thread count, including pool == null.
/// Note the sequence differs from `count` serial Resample() calls on
/// one shared stream; both are valid bootstrap draws.
std::vector<std::vector<double>> ResampleMany(
    std::span<const double> sample, size_t count, Rng& parent,
    ThreadPool* pool = nullptr);

}  // namespace bootstrap
}  // namespace ausdb

#endif  // AUSDB_BOOTSTRAP_RESAMPLER_H_
