#ifndef AUSDB_EXPR_ANALYZER_H_
#define AUSDB_EXPR_ANALYZER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace ausdb {
namespace expr {

/// Distinct column names referenced anywhere in `e`, in first-seen order.
std::vector<std::string> CollectColumns(const Expr& e);

/// \brief A numeric expression reduced to linear form:
/// sum_i coefficients[name_i] * X_{name_i} + constant.
///
/// The evaluator uses this to take the closed-form Gaussian path: a linear
/// combination of independent Gaussian columns is Gaussian with mean
/// sum c_i mu_i + k and variance sum c_i^2 sigma_i^2 — exactly the
/// arithmetic the sliding-window AVG query of Section V-C needs.
struct LinearForm {
  std::map<std::string, double> coefficients;
  double constant = 0.0;
};

/// \brief Attempts to reduce `e` to a LinearForm.
///
/// Handles literals, column references, negation, +, -, and */ where the
/// non-column side folds to a constant. Returns nullopt for anything
/// nonlinear (SQUARE, SQRT_ABS, column*column, division by a column, ...).
std::optional<LinearForm> ExtractLinear(const Expr& e);

/// True iff the expression contains no column references (it folds to a
/// constant independent of the input tuple).
bool IsConstant(const Expr& e);

}  // namespace expr
}  // namespace ausdb

#endif  // AUSDB_EXPR_ANALYZER_H_
