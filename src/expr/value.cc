#include "src/expr/value.h"

#include <sstream>

namespace ausdb {
namespace expr {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kRandomVar:
      return "random_var";
  }
  return "unknown";
}

namespace {

Status TypeMismatch(ValueType want, ValueType got) {
  return Status::TypeError(std::string("expected ") +
                           std::string(ValueTypeToString(want)) + ", got " +
                           std::string(ValueTypeToString(got)));
}

}  // namespace

Result<bool> Value::bool_value() const {
  if (!is_bool()) return TypeMismatch(ValueType::kBool, type());
  return std::get<bool>(v_);
}

Result<double> Value::double_value() const {
  if (!is_double()) return TypeMismatch(ValueType::kDouble, type());
  return std::get<double>(v_);
}

Result<std::string> Value::string_value() const {
  if (!is_string()) return TypeMismatch(ValueType::kString, type());
  return std::get<std::string>(v_);
}

Result<dist::RandomVar> Value::random_var() const {
  if (!is_random_var()) return TypeMismatch(ValueType::kRandomVar, type());
  return std::get<dist::RandomVar>(v_);
}

Result<double> Value::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_bool()) return std::get<bool>(v_) ? 1.0 : 0.0;
  return Status::TypeError("value of type " +
                           std::string(ValueTypeToString(type())) +
                           " is not convertible to double");
}

Result<dist::RandomVar> Value::AsRandomVar() const {
  if (is_random_var()) return std::get<dist::RandomVar>(v_);
  if (is_double()) {
    return dist::RandomVar::Certain(std::get<double>(v_));
  }
  return Status::TypeError("value of type " +
                           std::string(ValueTypeToString(type())) +
                           " is not convertible to a random variable");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return std::get<bool>(v_) ? "true" : "false";
    case ValueType::kDouble: {
      std::ostringstream os;
      os << std::get<double>(v_);
      return os.str();
    }
    case ValueType::kString:
      return "'" + std::get<std::string>(v_) + "'";
    case ValueType::kRandomVar:
      return std::get<dist::RandomVar>(v_).ToString();
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return std::get<bool>(v_) == std::get<bool>(other.v_);
    case ValueType::kDouble:
      return std::get<double>(v_) == std::get<double>(other.v_);
    case ValueType::kString:
      return std::get<std::string>(v_) == std::get<std::string>(other.v_);
    case ValueType::kRandomVar:
      // Random variables compare by identity of their distribution
      // object; content equality is not meaningful.
      return std::get<dist::RandomVar>(v_).distribution() ==
             std::get<dist::RandomVar>(other.v_).distribution();
  }
  return false;
}

}  // namespace expr
}  // namespace ausdb
