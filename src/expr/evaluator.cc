#include "src/expr/evaluator.h"

#include <algorithm>
#include <cmath>

#include "src/accuracy/accuracy_info.h"
#include "src/dist/empirical.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/expr/analyzer.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/hypothesis/significance_predicates.h"

namespace ausdb {
namespace expr {

namespace {

using dist::RandomVar;
using hypothesis::TestOutcome;

constexpr size_t kCertain = RandomVar::kCertainSampleSize;

// Probability that (Y cmp 0) holds for the distribution of Y. Point
// masses at 0 matter only for kLe/kGe/kEq/kNe over discrete-flavored
// distributions; Distribution::ProbLess handles them.
double ProbCmpZero(const dist::Distribution& d, CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return d.ProbLess(0.0);
    case CmpOp::kLe:
      return d.Cdf(0.0);
    case CmpOp::kGt:
      return d.ProbGreater(0.0);
    case CmpOp::kGe:
      return 1.0 - d.ProbLess(0.0);
    case CmpOp::kEq:
      return d.Cdf(0.0) - d.ProbLess(0.0);
    case CmpOp::kNe:
      return 1.0 - (d.Cdf(0.0) - d.ProbLess(0.0));
  }
  return 0.0;
}

bool CompareScalars(double a, double b, CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
  }
  return false;
}

TestOutcome NotOutcome(TestOutcome o) {
  switch (o) {
    case TestOutcome::kTrue:
      return TestOutcome::kFalse;
    case TestOutcome::kFalse:
      return TestOutcome::kTrue;
    case TestOutcome::kUnsure:
      return TestOutcome::kUnsure;
  }
  return TestOutcome::kUnsure;
}

}  // namespace

Result<const Value*> Row::Get(const std::string& name) const {
  if (names == nullptr || values == nullptr) {
    return Status::Internal("row is not initialized");
  }
  for (size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == name) return &(*values)[i];
  }
  return Status::NotFound("column '" + name + "' not found in row");
}

Evaluator::Evaluator(EvalOptions options)
    : options_(options), rng_(options.seed) {}

Result<double> Evaluator::EvalScalar(const Expr& e, const Row& row,
                                     const Substitution* substitution) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      return v.AsDouble();
    }
    case ExprKind::kColumnRef: {
      const auto& name = static_cast<const ColumnRefExpr&>(e).name();
      if (substitution != nullptr) {
        const auto it = substitution->find(name);
        if (it != substitution->end()) return it->second;
      }
      AUSDB_ASSIGN_OR_RETURN(const Value* v, row.Get(name));
      if (v->is_random_var()) {
        AUSDB_ASSIGN_OR_RETURN(RandomVar rv, v->random_var());
        if (rv.is_certain()) return rv.certain_value();
        return Status::Internal("uncertain column '" + name +
                                "' reached scalar evaluation unsampled");
      }
      return v->AsDouble();
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op() == UnaryOp::kNot) {
        return Status::TypeError("NOT is a predicate, not a number");
      }
      AUSDB_ASSIGN_OR_RETURN(double x,
                             EvalScalar(*u.operand(), row, substitution));
      switch (u.op()) {
        case UnaryOp::kNegate:
          return -x;
        case UnaryOp::kSqrtAbs:
          return std::sqrt(std::abs(x));
        case UnaryOp::kSquare:
          return x * x;
        case UnaryOp::kAbs:
          return std::abs(x);
        case UnaryOp::kNot:
          break;  // unreachable
      }
      return Status::Internal("unhandled unary op");
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(double lhs,
                             EvalScalar(*b.lhs(), row, substitution));
      AUSDB_ASSIGN_OR_RETURN(double rhs,
                             EvalScalar(*b.rhs(), row, substitution));
      switch (b.op()) {
        case BinaryOp::kAdd:
          return lhs + rhs;
        case BinaryOp::kSub:
          return lhs - rhs;
        case BinaryOp::kMul:
          return lhs * rhs;
        case BinaryOp::kDiv:
          if (rhs == 0.0) {
            if (substitution == nullptr) {
              return Status::InvalidArgument("division by zero");
            }
            // In a Monte Carlo iteration a zero draw is clamped so that a
            // single unlucky sample does not poison the whole sequence.
            rhs = 1e-12;
          }
          return lhs / rhs;
      }
      return Status::Internal("unhandled binary op");
    }
    default:
      return Status::TypeError("expression " + e.ToString() +
                               " is not numeric");
  }
}

Result<Value> Evaluator::EvalNumeric(const Expr& e, const Row& row) {
  const std::vector<std::string> columns = CollectColumns(e);

  // Split referenced columns into certain and uncertain.
  std::vector<std::pair<std::string, RandomVar>> uncertain;
  for (const std::string& name : columns) {
    AUSDB_ASSIGN_OR_RETURN(const Value* v, row.Get(name));
    if (v->is_random_var()) {
      AUSDB_ASSIGN_OR_RETURN(RandomVar rv, v->random_var());
      if (!rv.is_certain()) uncertain.emplace_back(name, std::move(rv));
    } else if (!v->is_double() && !v->is_bool()) {
      return Status::TypeError("column '" + name +
                               "' is not numeric in " + e.ToString());
    }
  }

  if (uncertain.empty()) {
    AUSDB_ASSIGN_OR_RETURN(double v, EvalScalar(e, row, nullptr));
    return Value(v);
  }

  // Closed-form Gaussian path for linear expressions.
  if (options_.prefer_closed_form) {
    if (auto lin = ExtractLinear(e)) {
      bool all_gaussian = true;
      double mean = lin->constant;
      double variance = 0.0;
      size_t df = kCertain;
      for (const auto& [name, coeff] : lin->coefficients) {
        if (coeff == 0.0) continue;
        AUSDB_ASSIGN_OR_RETURN(const Value* v, row.Get(name));
        if (v->is_random_var()) {
          AUSDB_ASSIGN_OR_RETURN(RandomVar rv, v->random_var());
          if (rv.is_certain()) {
            AUSDB_ASSIGN_OR_RETURN(double cv, rv.certain_value());
            mean += coeff * cv;
            continue;
          }
          if (rv.distribution()->kind() !=
              dist::DistributionKind::kGaussian) {
            all_gaussian = false;
            break;
          }
          mean += coeff * rv.Mean();
          variance += coeff * coeff * rv.Variance();
          df = std::min(df, rv.sample_size());
        } else {
          AUSDB_ASSIGN_OR_RETURN(double cv, v->AsDouble());
          mean += coeff * cv;
        }
      }
      if (all_gaussian) {
        if (df == kCertain) {
          // Every uncertain column had coefficient zero: deterministic.
          return Value(mean);
        }
        RandomVar out(std::make_shared<dist::GaussianDist>(mean, variance),
                      df);
        return Value(std::move(out));
      }
    }
  }

  // Monte Carlo path: per iteration, sample each distinct uncertain
  // column once (shared across all its occurrences), then evaluate
  // deterministically. Lemma 3 gives the output's d.f. sample size.
  size_t df = kCertain;
  for (const auto& [name, rv] : uncertain) {
    df = std::min(df, rv.sample_size());
  }
  auto values = std::make_shared<std::vector<double>>();
  values->reserve(options_.mc_samples);
  Substitution sub;
  for (size_t i = 0; i < options_.mc_samples; ++i) {
    for (const auto& [name, rv] : uncertain) {
      sub[name] = rv.Sample(rng_);
    }
    AUSDB_ASSIGN_OR_RETURN(double v, EvalScalar(e, row, &sub));
    values->push_back(v);
  }
  AUSDB_ASSIGN_OR_RETURN(
      dist::EmpiricalDist emp,
      dist::EmpiricalDist::Make(*values));
  RandomVar out(std::make_shared<dist::EmpiricalDist>(std::move(emp)), df);
  out.set_raw_sample(values);
  return Value(std::move(out));
}

Result<Value> Evaluator::EvalAccuracyOf(const AccuracyOfExpr& e,
                                        const Row& row) {
  AUSDB_ASSIGN_OR_RETURN(Value operand, EvalNumeric(*e.operand(), row));
  AUSDB_ASSIGN_OR_RETURN(RandomVar rv, operand.AsRandomVar());
  AUSDB_ASSIGN_OR_RETURN(accuracy::AccuracyInfo info,
                         accuracy::AnalyticalAccuracy(rv, e.confidence()));
  switch (e.stat()) {
    case AccuracyStat::kMeanCi:
      return Value(info.mean_ci->ToString());
    case AccuracyStat::kVarianceCi:
      return Value(info.variance_ci->ToString());
    case AccuracyStat::kBinCi:
      if (e.bin_index() >= info.bin_cis.size()) {
        return Status::OutOfRange(
            "BIN_CI index " + std::to_string(e.bin_index()) +
            " out of range (histogram has " +
            std::to_string(info.bin_cis.size()) + " bins)");
      }
      return Value(info.bin_cis[e.bin_index()].ToString());
  }
  return Status::Internal("unhandled accuracy stat");
}

Result<Value> Evaluator::Evaluate(const Expr& e, const Row& row) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value();
    case ExprKind::kColumnRef: {
      AUSDB_ASSIGN_OR_RETURN(
          const Value* v,
          row.Get(static_cast<const ColumnRefExpr&>(e).name()));
      return *v;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op() == UnaryOp::kNot) {
        AUSDB_ASSIGN_OR_RETURN(PredicateOutcome p,
                               EvaluatePredicate(e, row));
        if (!p.deterministic) {
          return Status::TypeError(
              "NOT over uncertain data is a probability, not a value; "
              "wrap it in PROB(...)");
        }
        return Value(p.probability >= 1.0);
      }
      return EvalNumeric(e, row);
    }
    case ExprKind::kBinary:
      return EvalNumeric(e, row);
    case ExprKind::kCompare:
    case ExprKind::kLogical: {
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome p, EvaluatePredicate(e, row));
      if (!p.deterministic) {
        return Status::TypeError(
            "comparison over uncertain data is a probability, not a "
            "value; wrap it in PROB(...) or use a threshold predicate");
      }
      return Value(p.probability >= 1.0);
    }
    case ExprKind::kProbOf: {
      const auto& po = static_cast<const ProbOfExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome p,
                             EvaluatePredicate(*po.pred(), row));
      return Value(p.probability);
    }
    case ExprKind::kProbThreshold:
    case ExprKind::kMTest:
    case ExprKind::kMdTest:
    case ExprKind::kPTest: {
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome p, EvaluatePredicate(e, row));
      if (p.significance.has_value()) {
        return Value(
            std::string(hypothesis::TestOutcomeToString(*p.significance)));
      }
      return Value(p.probability >= 1.0);
    }
    case ExprKind::kAccuracyOf:
      return EvalAccuracyOf(static_cast<const AccuracyOfExpr&>(e), row);
  }
  return Status::Internal("unhandled expression kind");
}

Result<PredicateOutcome> Evaluator::EvalCompare(const CompareExpr& e,
                                                const Row& row) {
  // Fully deterministic string equality first.
  {
    auto lv = Evaluate(*e.lhs(), row);
    auto rv = Evaluate(*e.rhs(), row);
    if (lv.ok() && rv.ok() && lv->is_string() && rv->is_string()) {
      if (e.op() != CmpOp::kEq && e.op() != CmpOp::kNe) {
        return Status::TypeError(
            "strings support only = and <> comparisons");
      }
      const bool eq = *lv->string_value() == *rv->string_value();
      PredicateOutcome out;
      out.probability = (e.op() == CmpOp::kEq) == eq ? 1.0 : 0.0;
      out.df_sample_size = kCertain;
      out.deterministic = true;
      return out;
    }
  }

  // Fast path: single column against a constant — exact via the CDF,
  // without materializing a difference distribution.
  const auto column_vs_constant =
      [&](const Expr& col_side, const Expr& const_side,
          bool flipped) -> Result<std::optional<PredicateOutcome>> {
    if (col_side.kind() != ExprKind::kColumnRef || !IsConstant(const_side)) {
      return std::optional<PredicateOutcome>(std::nullopt);
    }
    AUSDB_ASSIGN_OR_RETURN(
        const Value* v,
        row.Get(static_cast<const ColumnRefExpr&>(col_side).name()));
    if (!v->is_random_var()) {
      return std::optional<PredicateOutcome>(std::nullopt);
    }
    AUSDB_ASSIGN_OR_RETURN(RandomVar rv, v->random_var());
    if (rv.is_certain()) {
      return std::optional<PredicateOutcome>(std::nullopt);
    }
    AUSDB_ASSIGN_OR_RETURN(double c, EvalScalar(const_side, row, nullptr));
    // X cmp c  <=>  (X - c) cmp 0; if the column is on the right we have
    // c cmp X  <=>  (X) inverted-cmp c.
    CmpOp op = e.op();
    if (flipped) {
      switch (op) {
        case CmpOp::kLt:
          op = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          op = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          op = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          op = CmpOp::kLe;
          break;
        default:
          break;
      }
    }
    const dist::Distribution& d = *rv.distribution();
    double p = 0.0;
    switch (op) {
      case CmpOp::kLt:
        p = d.ProbLess(c);
        break;
      case CmpOp::kLe:
        p = d.Cdf(c);
        break;
      case CmpOp::kGt:
        p = d.ProbGreater(c);
        break;
      case CmpOp::kGe:
        p = 1.0 - d.ProbLess(c);
        break;
      case CmpOp::kEq:
        p = d.Cdf(c) - d.ProbLess(c);
        break;
      case CmpOp::kNe:
        p = 1.0 - (d.Cdf(c) - d.ProbLess(c));
        break;
    }
    PredicateOutcome out;
    out.probability = p;
    out.df_sample_size = rv.sample_size();
    out.deterministic = false;
    return std::optional<PredicateOutcome>(out);
  };

  AUSDB_ASSIGN_OR_RETURN(auto fast,
                         column_vs_constant(*e.lhs(), *e.rhs(), false));
  if (fast.has_value()) return *fast;
  AUSDB_ASSIGN_OR_RETURN(fast, column_vs_constant(*e.rhs(), *e.lhs(), true));
  if (fast.has_value()) return *fast;

  // General path: evaluate Y = lhs - rhs and compare against zero.
  const BinaryExpr diff(BinaryOp::kSub, e.lhs(), e.rhs());
  AUSDB_ASSIGN_OR_RETURN(Value y, EvalNumeric(diff, row));
  PredicateOutcome out;
  if (y.is_double()) {
    out.probability =
        CompareScalars(*y.double_value(), 0.0, e.op()) ? 1.0 : 0.0;
    out.df_sample_size = kCertain;
    out.deterministic = true;
    return out;
  }
  AUSDB_ASSIGN_OR_RETURN(RandomVar rv, y.random_var());
  out.probability = ProbCmpZero(*rv.distribution(), e.op());
  out.df_sample_size = rv.sample_size();
  out.deterministic = false;
  return out;
}

Result<PredicateOutcome> Evaluator::EvalSignificance(const Expr& e,
                                                     const Row& row) {
  using hypothesis::CoupledTests;
  using hypothesis::MeanDifferenceTest;
  using hypothesis::MeanTest;
  using hypothesis::ProportionTest;
  using hypothesis::SampleStatistics;
  using hypothesis::TestOp;

  const auto stats_of = [&](const Expr& operand)
      -> Result<SampleStatistics> {
    AUSDB_ASSIGN_OR_RETURN(Value v, EvalNumeric(operand, row));
    AUSDB_ASSIGN_OR_RETURN(RandomVar rv, v.AsRandomVar());
    return hypothesis::StatisticsOf(rv);
  };

  const auto finish = [](Result<TestOutcome> outcome, size_t df)
      -> Result<PredicateOutcome> {
    AUSDB_ASSIGN_OR_RETURN(TestOutcome o, std::move(outcome));
    PredicateOutcome out;
    out.probability = o == TestOutcome::kTrue ? 1.0 : 0.0;
    out.df_sample_size = df;
    out.significance = o;
    out.deterministic = true;
    return out;
  };

  switch (e.kind()) {
    case ExprKind::kMTest: {
      const auto& m = static_cast<const MTestExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(SampleStatistics s, stats_of(*m.operand()));
      if (m.alpha2().has_value()) {
        return finish(
            CoupledTests(
                [&s, &m](TestOp op, double alpha) {
                  return MeanTest(s, op, m.c(), alpha);
                },
                m.op(), m.alpha(), *m.alpha2()),
            s.n);
      }
      AUSDB_ASSIGN_OR_RETURN(bool accept,
                             MeanTest(s, m.op(), m.c(), m.alpha()));
      return finish(accept ? TestOutcome::kTrue : TestOutcome::kFalse,
                    s.n);
    }
    case ExprKind::kMdTest: {
      const auto& m = static_cast<const MdTestExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(SampleStatistics sx, stats_of(*m.x()));
      AUSDB_ASSIGN_OR_RETURN(SampleStatistics sy, stats_of(*m.y()));
      const size_t df = std::min(sx.n, sy.n);
      if (m.alpha2().has_value()) {
        return finish(
            CoupledTests(
                [&sx, &sy, &m](TestOp op, double alpha) {
                  return MeanDifferenceTest(sx, sy, op, m.c(), alpha);
                },
                m.op(), m.alpha(), *m.alpha2()),
            df);
      }
      AUSDB_ASSIGN_OR_RETURN(
          bool accept, MeanDifferenceTest(sx, sy, m.op(), m.c(), m.alpha()));
      return finish(accept ? TestOutcome::kTrue : TestOutcome::kFalse, df);
    }
    case ExprKind::kPTest: {
      const auto& p = static_cast<const PTestExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome inner,
                             EvaluatePredicate(*p.pred(), row));
      if (inner.df_sample_size == kCertain) {
        return Status::InsufficientData(
            "pTest needs a predicate over uncertain fields");
      }
      const double p_hat = inner.probability;
      const size_t n = inner.df_sample_size;
      if (p.alpha2().has_value()) {
        return finish(
            CoupledTests(
                [p_hat, n, &p](TestOp op, double alpha) {
                  return ProportionTest(p_hat, n, op, p.tau(), alpha);
                },
                TestOp::kGreater, p.alpha(), *p.alpha2()),
            n);
      }
      AUSDB_ASSIGN_OR_RETURN(
          bool accept,
          ProportionTest(p_hat, n, TestOp::kGreater, p.tau(), p.alpha()));
      return finish(accept ? TestOutcome::kTrue : TestOutcome::kFalse, n);
    }
    default:
      return Status::Internal("not a significance predicate");
  }
}

Result<PredicateOutcome> Evaluator::EvaluatePredicate(const Expr& e,
                                                      const Row& row) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      AUSDB_ASSIGN_OR_RETURN(bool b, v.bool_value());
      PredicateOutcome out;
      out.probability = b ? 1.0 : 0.0;
      out.df_sample_size = kCertain;
      out.deterministic = true;
      return out;
    }
    case ExprKind::kColumnRef: {
      AUSDB_ASSIGN_OR_RETURN(
          const Value* v,
          row.Get(static_cast<const ColumnRefExpr&>(e).name()));
      AUSDB_ASSIGN_OR_RETURN(bool b, v->bool_value());
      PredicateOutcome out;
      out.probability = b ? 1.0 : 0.0;
      out.df_sample_size = kCertain;
      out.deterministic = true;
      return out;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op() != UnaryOp::kNot) {
        return Status::TypeError("numeric expression used as a predicate: " +
                                 e.ToString());
      }
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome inner,
                             EvaluatePredicate(*u.operand(), row));
      inner.probability = 1.0 - inner.probability;
      if (inner.significance.has_value()) {
        inner.significance = NotOutcome(*inner.significance);
      }
      return inner;
    }
    case ExprKind::kCompare:
      return EvalCompare(static_cast<const CompareExpr&>(e), row);
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome a,
                             EvaluatePredicate(*l.lhs(), row));
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome b,
                             EvaluatePredicate(*l.rhs(), row));
      PredicateOutcome out;
      // Attribute independence across distinct fields, as in the paper's
      // data model.
      if (l.op() == LogicalOp::kAnd) {
        out.probability = a.probability * b.probability;
      } else {
        out.probability =
            1.0 - (1.0 - a.probability) * (1.0 - b.probability);
      }
      out.df_sample_size = std::min(a.df_sample_size, b.df_sample_size);
      out.deterministic = a.deterministic && b.deterministic;
      return out;
    }
    case ExprKind::kProbThreshold: {
      const auto& pt = static_cast<const ProbThresholdExpr&>(e);
      AUSDB_ASSIGN_OR_RETURN(PredicateOutcome inner,
                             EvaluatePredicate(*pt.pred(), row));
      PredicateOutcome out;
      out.probability = inner.probability >= pt.threshold() ? 1.0 : 0.0;
      out.df_sample_size = inner.df_sample_size;
      out.deterministic = true;
      return out;
    }
    case ExprKind::kMTest:
    case ExprKind::kMdTest:
    case ExprKind::kPTest:
      return EvalSignificance(e, row);
    case ExprKind::kProbOf:
      return Status::TypeError(
          "PROB(...) is a numeric value; compare it against a constant to "
          "form a predicate");
    default:
      return Status::TypeError("expression is not a predicate: " +
                               e.ToString());
  }
}

}  // namespace expr
}  // namespace ausdb
