#include "src/expr/expr.h"

#include <sstream>

namespace ausdb {
namespace expr {

std::string_view UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNegate:
      return "-";
    case UnaryOp::kSqrtAbs:
      return "SQRT_ABS";
    case UnaryOp::kSquare:
      return "SQUARE";
    case UnaryOp::kAbs:
      return "ABS";
    case UnaryOp::kNot:
      return "NOT";
  }
  return "?";
}

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
  }
  return "?";
}

std::string_view LogicalOpToString(LogicalOp op) {
  return op == LogicalOp::kAnd ? "AND" : "OR";
}

std::string UnaryExpr::ToString() const {
  std::ostringstream os;
  if (op_ == UnaryOp::kNegate) {
    os << "(-" << operand_->ToString() << ")";
  } else {
    os << UnaryOpToString(op_) << "(" << operand_->ToString() << ")";
  }
  return os.str();
}

std::string BinaryExpr::ToString() const {
  std::ostringstream os;
  os << "(" << lhs_->ToString() << " " << BinaryOpToString(op_) << " "
     << rhs_->ToString() << ")";
  return os.str();
}

std::string CompareExpr::ToString() const {
  std::ostringstream os;
  os << "(" << lhs_->ToString() << " " << CmpOpToString(op_) << " "
     << rhs_->ToString() << ")";
  return os.str();
}

std::string LogicalExpr::ToString() const {
  std::ostringstream os;
  os << "(" << lhs_->ToString() << " " << LogicalOpToString(op_) << " "
     << rhs_->ToString() << ")";
  return os.str();
}

std::string ProbOfExpr::ToString() const {
  return "PROB(" + pred_->ToString() + ")";
}

std::string ProbThresholdExpr::ToString() const {
  std::ostringstream os;
  os << pred_->ToString() << " PROB >= " << threshold_;
  return os.str();
}

std::string MTestExpr::ToString() const {
  std::ostringstream os;
  os << "MTEST(" << operand_->ToString() << ", '"
     << hypothesis::TestOpToString(op_) << "', " << c_ << ", " << alpha_;
  if (alpha2_) os << ", " << *alpha2_;
  os << ")";
  return os.str();
}

std::string MdTestExpr::ToString() const {
  std::ostringstream os;
  os << "MDTEST(" << x_->ToString() << ", " << y_->ToString() << ", '"
     << hypothesis::TestOpToString(op_) << "', " << c_ << ", " << alpha_;
  if (alpha2_) os << ", " << *alpha2_;
  os << ")";
  return os.str();
}

std::string PTestExpr::ToString() const {
  std::ostringstream os;
  os << "PTEST(" << pred_->ToString() << ", " << tau_ << ", " << alpha_;
  if (alpha2_) os << ", " << *alpha2_;
  os << ")";
  return os.str();
}

std::string AccuracyOfExpr::ToString() const {
  std::ostringstream os;
  switch (stat_) {
    case AccuracyStat::kMeanCi:
      os << "MEAN_CI(" << operand_->ToString() << ", " << confidence_
         << ")";
      break;
    case AccuracyStat::kVarianceCi:
      os << "VAR_CI(" << operand_->ToString() << ", " << confidence_
         << ")";
      break;
    case AccuracyStat::kBinCi:
      os << "BIN_CI(" << operand_->ToString() << ", " << bin_index_ << ", "
         << confidence_ << ")";
      break;
  }
  return os.str();
}

ExprPtr Lit(double v) { return std::make_shared<LiteralExpr>(Value(v)); }
ExprPtr Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Value(std::move(v)));
}
ExprPtr LitBool(bool v) { return std::make_shared<LiteralExpr>(Value(v)); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Neg(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNegate, std::move(e));
}
ExprPtr SqrtAbs(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kSqrtAbs, std::move(e));
}
ExprPtr Square(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kSquare, std::move(e));
}
ExprPtr Abs(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kAbs, std::move(e));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(e));
}
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinaryOp::kAdd, std::move(a),
                                      std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinaryOp::kSub, std::move(a),
                                      std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinaryOp::kMul, std::move(a),
                                      std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinaryOp::kDiv, std::move(a),
                                      std::move(b));
}
ExprPtr Cmp(CmpOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(op, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Cmp(CmpOp::kGt, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Cmp(CmpOp::kLt, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(a),
                                       std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(a),
                                       std::move(b));
}
ExprPtr ProbOf(ExprPtr pred) {
  return std::make_shared<ProbOfExpr>(std::move(pred));
}
ExprPtr ProbThreshold(ExprPtr pred, double tau) {
  return std::make_shared<ProbThresholdExpr>(std::move(pred), tau);
}
ExprPtr MTest(ExprPtr x, hypothesis::TestOp op, double c, double alpha,
              std::optional<double> alpha2) {
  return std::make_shared<MTestExpr>(std::move(x), op, c, alpha, alpha2);
}
ExprPtr MdTest(ExprPtr x, ExprPtr y, hypothesis::TestOp op, double c,
               double alpha, std::optional<double> alpha2) {
  return std::make_shared<MdTestExpr>(std::move(x), std::move(y), op, c,
                                      alpha, alpha2);
}
ExprPtr PTest(ExprPtr pred, double tau, double alpha,
              std::optional<double> alpha2) {
  return std::make_shared<PTestExpr>(std::move(pred), tau, alpha, alpha2);
}
ExprPtr MeanCi(ExprPtr x, double confidence) {
  return std::make_shared<AccuracyOfExpr>(AccuracyStat::kMeanCi,
                                          std::move(x), confidence);
}
ExprPtr VarCi(ExprPtr x, double confidence) {
  return std::make_shared<AccuracyOfExpr>(AccuracyStat::kVarianceCi,
                                          std::move(x), confidence);
}
ExprPtr BinCi(ExprPtr x, size_t bin_index, double confidence) {
  return std::make_shared<AccuracyOfExpr>(AccuracyStat::kBinCi,
                                          std::move(x), confidence,
                                          bin_index);
}

}  // namespace expr
}  // namespace ausdb
