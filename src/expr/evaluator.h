#ifndef AUSDB_EXPR_EVALUATOR_H_
#define AUSDB_EXPR_EVALUATOR_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/expr/expr.h"
#include "src/expr/value.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace expr {

/// \brief A view of one input tuple: parallel column names and values.
///
/// The engine's Tuple adapts to this; the evaluator itself stays
/// independent of the storage layer.
struct Row {
  const std::vector<std::string>* names = nullptr;
  const std::vector<Value>* values = nullptr;

  /// Looks a column up by name; NotFound if absent.
  Result<const Value*> Get(const std::string& name) const;
};

/// Tuning knobs for expression evaluation.
struct EvalOptions {
  /// Monte Carlo sample count m for nonlinear expressions over uncertain
  /// fields. Grouped into m/n d.f. resamples by the bootstrap accuracy
  /// path, so keep it a comfortable multiple of typical sample sizes.
  size_t mc_samples = 2000;

  /// Seed of the evaluator's private generator.
  uint64_t seed = 0xA0D5DBull;

  /// Take the closed-form Gaussian path for linear expressions over
  /// Gaussian columns (exact and fast). Disable to force Monte Carlo —
  /// used by the ablation benchmark.
  bool prefer_closed_form = true;
};

/// \brief Outcome of evaluating a predicate over one tuple, under the
/// possible-world semantics.
struct PredicateOutcome {
  /// Probability the predicate holds for this tuple.
  double probability = 0.0;

  /// De facto sample size of the boolean output variable (Lemma 3); this
  /// is what Theorem 1 uses for the tuple-probability interval.
  /// dist::RandomVar::kCertainSampleSize when the predicate involved no
  /// uncertain fields.
  size_t df_sample_size = 0;

  /// Set when the predicate was a (coupled) significance predicate.
  std::optional<hypothesis::TestOutcome> significance;

  /// True if the predicate decision is exact (no sampling error), e.g.
  /// deterministic comparison or a probability-threshold decision.
  bool deterministic = false;
};

/// \brief Evaluates expression trees over rows.
///
/// Numeric expressions over uncertain fields take one of two paths:
///  * closed form, when the expression is linear over Gaussian columns
///    (exact; see analyzer.h), or
///  * Monte Carlo: m iterations, each sampling every distinct uncertain
///    column once (preserving intra-tuple correlation through shared
///    columns) and evaluating the tree deterministically. The resulting
///    value sequence is retained on the output RandomVar so that
///    BOOTSTRAP-ACCURACY-INFO can consume it directly (Section III-B,
///    "first category").
/// In both paths the d.f. sample size follows Lemma 3.
class Evaluator {
 public:
  explicit Evaluator(EvalOptions options = {});

  /// Evaluates a (typically numeric or accuracy-projection) expression.
  /// Comparisons and logical connectives over uncertain data are not
  /// values; use EvaluatePredicate or wrap them in PROB(...).
  Result<Value> Evaluate(const Expr& e, const Row& row);

  /// Evaluates a predicate expression to a PredicateOutcome.
  Result<PredicateOutcome> EvaluatePredicate(const Expr& e, const Row& row);

  const EvalOptions& options() const { return options_; }

  /// Reseeds the internal generator (for reproducible reruns).
  void Reseed(uint64_t seed) { rng_.Seed(seed); }

 private:
  using Substitution = std::unordered_map<std::string, double>;

  /// Deterministic scalar evaluation; uncertain columns must appear in
  /// `substitution`.
  Result<double> EvalScalar(const Expr& e, const Row& row,
                            const Substitution* substitution);

  /// Full numeric evaluation of an expression that may reference
  /// uncertain columns.
  Result<Value> EvalNumeric(const Expr& e, const Row& row);

  Result<Value> EvalAccuracyOf(const AccuracyOfExpr& e, const Row& row);

  Result<PredicateOutcome> EvalCompare(const CompareExpr& e, const Row& row);
  Result<PredicateOutcome> EvalSignificance(const Expr& e, const Row& row);

  EvalOptions options_;
  Rng rng_;
};

}  // namespace expr
}  // namespace ausdb

#endif  // AUSDB_EXPR_EVALUATOR_H_
