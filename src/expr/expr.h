#ifndef AUSDB_EXPR_EXPR_H_
#define AUSDB_EXPR_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/expr/value.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace expr {

/// Node discriminator of the expression AST.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kCompare,
  kLogical,
  kProbOf,          ///< PROB(pred): probability of a predicate.
  kProbThreshold,   ///< pred PROB >= tau — probabilistic threshold.
  kMTest,           ///< significance predicate on a mean.
  kMdTest,          ///< significance predicate on a mean difference.
  kPTest,           ///< significance predicate on a probability.
  kAccuracyOf,      ///< MEAN_CI/VAR_CI/BIN_CI projections.
};

enum class UnaryOp {
  kNegate,   ///< -x
  kSqrtAbs,  ///< SQRT(ABS(x)) — one of the paper's six random operators.
  kSquare,   ///< SQUARE(x)
  kAbs,      ///< ABS(x)
  kNot,      ///< NOT p
};

enum class BinaryOp { kAdd, kSub, kMul, kDiv };

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

enum class LogicalOp { kAnd, kOr };

/// Which accuracy projection an AccuracyOfExpr computes.
enum class AccuracyStat { kMeanCi, kVarianceCi, kBinCi };

std::string_view UnaryOpToString(UnaryOp op);
std::string_view BinaryOpToString(BinaryOp op);
std::string_view CmpOpToString(CmpOp op);
std::string_view LogicalOpToString(LogicalOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Immutable expression tree node.
///
/// Built either programmatically with the factory functions below or by
/// the AQL parser (src/query). Column references start unbound; the
/// evaluator binds them against a schema before execution.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual ExprKind kind() const = 0;
  virtual std::string ToString() const = 0;
  /// Child expressions, for generic tree walks.
  virtual std::vector<ExprPtr> children() const { return {}; }
};

/// A literal constant (double, string or bool).
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  std::string ToString() const override { return value_.ToString(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// A reference to a named column of the input stream.
class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  std::string ToString() const override { return name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  ExprKind kind() const override { return ExprKind::kUnary; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {operand_}; }
  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kBinary; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {lhs_, rhs_}; }
  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kCompare; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {lhs_, rhs_}; }
  CmpOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  CmpOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kLogical; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {lhs_, rhs_}; }
  LogicalOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  LogicalOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// PROB(pred): evaluates to the probability (a double) that `pred` holds
/// under the possible-world semantics of the current tuple.
class ProbOfExpr final : public Expr {
 public:
  explicit ProbOfExpr(ExprPtr pred) : pred_(std::move(pred)) {}
  ExprKind kind() const override { return ExprKind::kProbOf; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {pred_}; }
  const ExprPtr& pred() const { return pred_; }

 private:
  ExprPtr pred_;
};

/// pred PROB >= tau: the probabilistic threshold predicate (the paper's
/// `Delay >_{2/3} 50`). Evaluates to a boolean.
class ProbThresholdExpr final : public Expr {
 public:
  ProbThresholdExpr(ExprPtr pred, double threshold)
      : pred_(std::move(pred)), threshold_(threshold) {}
  ExprKind kind() const override { return ExprKind::kProbThreshold; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {pred_}; }
  const ExprPtr& pred() const { return pred_; }
  double threshold() const { return threshold_; }

 private:
  ExprPtr pred_;
  double threshold_;
};

/// mTest(X, op, c, alpha [, alpha2]): significance predicate on a mean.
/// With alpha2 set it runs COUPLED-TESTS (three-state outcome).
class MTestExpr final : public Expr {
 public:
  MTestExpr(ExprPtr operand, hypothesis::TestOp op, double c, double alpha,
            std::optional<double> alpha2 = std::nullopt)
      : operand_(std::move(operand)),
        op_(op),
        c_(c),
        alpha_(alpha),
        alpha2_(alpha2) {}
  ExprKind kind() const override { return ExprKind::kMTest; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {operand_}; }
  const ExprPtr& operand() const { return operand_; }
  hypothesis::TestOp op() const { return op_; }
  double c() const { return c_; }
  double alpha() const { return alpha_; }
  const std::optional<double>& alpha2() const { return alpha2_; }

 private:
  ExprPtr operand_;
  hypothesis::TestOp op_;
  double c_;
  double alpha_;
  std::optional<double> alpha2_;
};

/// mdTest(X, Y, op, c, alpha [, alpha2]).
class MdTestExpr final : public Expr {
 public:
  MdTestExpr(ExprPtr x, ExprPtr y, hypothesis::TestOp op, double c,
             double alpha, std::optional<double> alpha2 = std::nullopt)
      : x_(std::move(x)),
        y_(std::move(y)),
        op_(op),
        c_(c),
        alpha_(alpha),
        alpha2_(alpha2) {}
  ExprKind kind() const override { return ExprKind::kMdTest; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {x_, y_}; }
  const ExprPtr& x() const { return x_; }
  const ExprPtr& y() const { return y_; }
  hypothesis::TestOp op() const { return op_; }
  double c() const { return c_; }
  double alpha() const { return alpha_; }
  const std::optional<double>& alpha2() const { return alpha2_; }

 private:
  ExprPtr x_;
  ExprPtr y_;
  hypothesis::TestOp op_;
  double c_;
  double alpha_;
  std::optional<double> alpha2_;
};

/// pTest(pred, tau, alpha [, alpha2]).
class PTestExpr final : public Expr {
 public:
  PTestExpr(ExprPtr pred, double tau, double alpha,
            std::optional<double> alpha2 = std::nullopt)
      : pred_(std::move(pred)), tau_(tau), alpha_(alpha), alpha2_(alpha2) {}
  ExprKind kind() const override { return ExprKind::kPTest; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {pred_}; }
  const ExprPtr& pred() const { return pred_; }
  double tau() const { return tau_; }
  double alpha() const { return alpha_; }
  const std::optional<double>& alpha2() const { return alpha2_; }

 private:
  ExprPtr pred_;
  double tau_;
  double alpha_;
  std::optional<double> alpha2_;
};

/// MEAN_CI(x, conf) / VAR_CI(x, conf) / BIN_CI(x, i, conf): projects a
/// piece of accuracy information out of an uncertain field; evaluates to
/// a string rendering of the interval (for SELECT lists).
class AccuracyOfExpr final : public Expr {
 public:
  AccuracyOfExpr(AccuracyStat stat, ExprPtr operand, double confidence,
                 size_t bin_index = 0)
      : stat_(stat),
        operand_(std::move(operand)),
        confidence_(confidence),
        bin_index_(bin_index) {}
  ExprKind kind() const override { return ExprKind::kAccuracyOf; }
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {operand_}; }
  AccuracyStat stat() const { return stat_; }
  const ExprPtr& operand() const { return operand_; }
  double confidence() const { return confidence_; }
  size_t bin_index() const { return bin_index_; }

 private:
  AccuracyStat stat_;
  ExprPtr operand_;
  double confidence_;
  size_t bin_index_;
};

// ---- Factory helpers for programmatic construction ----

ExprPtr Lit(double v);
ExprPtr Lit(std::string v);
ExprPtr LitBool(bool v);
ExprPtr Col(std::string name);
ExprPtr Neg(ExprPtr e);
ExprPtr SqrtAbs(ExprPtr e);
ExprPtr Square(ExprPtr e);
ExprPtr Abs(ExprPtr e);
ExprPtr Not(ExprPtr e);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Cmp(CmpOp op, ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr ProbOf(ExprPtr pred);
ExprPtr ProbThreshold(ExprPtr pred, double tau);
ExprPtr MTest(ExprPtr x, hypothesis::TestOp op, double c, double alpha,
              std::optional<double> alpha2 = std::nullopt);
ExprPtr MdTest(ExprPtr x, ExprPtr y, hypothesis::TestOp op, double c,
               double alpha, std::optional<double> alpha2 = std::nullopt);
ExprPtr PTest(ExprPtr pred, double tau, double alpha,
              std::optional<double> alpha2 = std::nullopt);
ExprPtr MeanCi(ExprPtr x, double confidence);
ExprPtr VarCi(ExprPtr x, double confidence);
ExprPtr BinCi(ExprPtr x, size_t bin_index, double confidence);

}  // namespace expr
}  // namespace ausdb

#endif  // AUSDB_EXPR_EXPR_H_
