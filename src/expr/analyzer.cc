#include "src/expr/analyzer.h"

#include <unordered_set>

namespace ausdb {
namespace expr {

namespace {

void CollectColumnsInto(const Expr& e, std::vector<std::string>* out,
                        std::unordered_set<std::string>* seen) {
  if (e.kind() == ExprKind::kColumnRef) {
    const auto& name = static_cast<const ColumnRefExpr&>(e).name();
    if (seen->insert(name).second) out->push_back(name);
    return;
  }
  for (const ExprPtr& child : e.children()) {
    CollectColumnsInto(*child, out, seen);
  }
}

// Scales every coefficient and the constant by `factor`.
LinearForm Scale(LinearForm form, double factor) {
  for (auto& [name, coeff] : form.coefficients) coeff *= factor;
  form.constant *= factor;
  return form;
}

// form_a + sign * form_b.
LinearForm Combine(LinearForm a, const LinearForm& b, double sign) {
  for (const auto& [name, coeff] : b.coefficients) {
    a.coefficients[name] += sign * coeff;
  }
  a.constant += sign * b.constant;
  return a;
}

// A form with no column terms is a constant.
std::optional<double> AsConstant(const LinearForm& form) {
  for (const auto& [name, coeff] : form.coefficients) {
    if (coeff != 0.0) return std::nullopt;
  }
  return form.constant;
}

}  // namespace

std::vector<std::string> CollectColumns(const Expr& e) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  CollectColumnsInto(e, &out, &seen);
  return out;
}

std::optional<LinearForm> ExtractLinear(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value();
      if (!v.is_double()) return std::nullopt;
      LinearForm form;
      form.constant = *v.double_value();
      return form;
    }
    case ExprKind::kColumnRef: {
      LinearForm form;
      form.coefficients[static_cast<const ColumnRefExpr&>(e).name()] = 1.0;
      return form;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op() != UnaryOp::kNegate) return std::nullopt;
      auto inner = ExtractLinear(*u.operand());
      if (!inner) return std::nullopt;
      return Scale(std::move(*inner), -1.0);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto lhs = ExtractLinear(*b.lhs());
      auto rhs = ExtractLinear(*b.rhs());
      if (!lhs || !rhs) return std::nullopt;
      switch (b.op()) {
        case BinaryOp::kAdd:
          return Combine(std::move(*lhs), *rhs, 1.0);
        case BinaryOp::kSub:
          return Combine(std::move(*lhs), *rhs, -1.0);
        case BinaryOp::kMul: {
          if (auto k = AsConstant(*lhs)) {
            return Scale(std::move(*rhs), *k);
          }
          if (auto k = AsConstant(*rhs)) {
            return Scale(std::move(*lhs), *k);
          }
          return std::nullopt;  // column * column is nonlinear
        }
        case BinaryOp::kDiv: {
          const auto k = AsConstant(*rhs);
          if (!k || *k == 0.0) return std::nullopt;
          return Scale(std::move(*lhs), 1.0 / *k);
        }
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

bool IsConstant(const Expr& e) { return CollectColumns(e).empty(); }

}  // namespace expr
}  // namespace ausdb
