#ifndef AUSDB_EXPR_VALUE_H_
#define AUSDB_EXPR_VALUE_H_

#include <string>
#include <variant>

#include "src/common/result.h"
#include "src/dist/random_var.h"

namespace ausdb {
namespace expr {

/// Runtime type of a Value.
enum class ValueType {
  kNull,
  kBool,
  kDouble,
  kString,
  kRandomVar,
};

std::string_view ValueTypeToString(ValueType type);

/// \brief A runtime value in the engine: a tuple field or the result of
/// evaluating an expression.
///
/// The interesting member is kRandomVar — a probability distribution with
/// accuracy provenance (d.f. sample size and optionally raw/Monte Carlo
/// observations). Deterministic fields are kDouble/kString/kBool; kNull
/// marks missing data.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(dist::RandomVar rv) : v_(std::move(rv)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      case 4:
        return ValueType::kRandomVar;
    }
    return ValueType::kNull;
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_random_var() const { return type() == ValueType::kRandomVar; }

  /// True for kDouble and for kRandomVar (both are numeric-valued).
  bool is_numeric() const { return is_double() || is_random_var(); }

  /// The bool payload; TypeError if not a bool.
  Result<bool> bool_value() const;

  /// The double payload; TypeError if not a double.
  Result<double> double_value() const;

  /// The string payload; TypeError if not a string.
  Result<std::string> string_value() const;

  /// The RandomVar payload; TypeError if not a random variable.
  Result<dist::RandomVar> random_var() const;

  /// Numeric view: a kDouble returns itself; a kRandomVar is not
  /// convertible (use AsRandomVar). TypeError otherwise.
  Result<double> AsDouble() const;

  /// Uncertainty view: a kRandomVar returns itself; a kDouble is lifted
  /// to a certain RandomVar. TypeError otherwise.
  Result<dist::RandomVar> AsRandomVar() const;

  std::string ToString() const;

  bool operator==(const Value& other) const;

 private:
  std::variant<std::monostate, bool, double, std::string, dist::RandomVar>
      v_;
};

}  // namespace expr
}  // namespace ausdb

#endif  // AUSDB_EXPR_VALUE_H_
