#include "src/io/csv.h"

#include <fstream>
#include <sstream>

namespace ausdb {
namespace io {

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("CSV column '" + name + "' not found");
}

Result<CsvTable> ParseCsv(std::string_view text,
                          const CsvParseOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<CsvError> errors;
  std::vector<std::string> current;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;
  size_t record_number = 0;  // 1-based over non-empty records

  const auto end_cell = [&] {
    current.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  const auto end_record = [&]() -> Status {
    end_cell();
    // Skip fully empty trailing lines.
    if (current.size() == 1 && current[0].empty()) {
      current.clear();
      return Status::OK();
    }
    ++record_number;
    if (!records.empty() && current.size() != records[0].size()) {
      const std::string reason =
          "ragged CSV: record " + std::to_string(record_number) + " has " +
          std::to_string(current.size()) + " fields, expected " +
          std::to_string(records[0].size());
      if (options.strict) return Status::ParseError(reason);
      errors.push_back({record_number, reason});
      current.clear();
      return Status::OK();
    }
    records.push_back(std::move(current));
    current.clear();
    return Status::OK();
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cell.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!cell_started && cell.empty()) {
          in_quotes = true;
          cell_started = true;
        } else {
          cell.push_back(c);
        }
        ++i;
        break;
      case ',':
        end_cell();
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        AUSDB_RETURN_NOT_OK(end_record());
        ++i;
        break;
      default:
        cell.push_back(c);
        cell_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  if (cell_started || !cell.empty() || !current.empty()) {
    AUSDB_RETURN_NOT_OK(end_record());
  }

  if (records.empty()) {
    return Status::ParseError("CSV has no header record");
  }
  CsvTable table;
  table.header = std::move(records[0]);
  table.rows.assign(std::make_move_iterator(records.begin() + 1),
                    std::make_move_iterator(records.end()));
  table.errors = std::move(errors);
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

}  // namespace io
}  // namespace ausdb
