#include "src/io/observation_loader.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>

namespace ausdb {
namespace io {

Result<LoadedObservations> LoadObservations(
    const CsvTable& table, const ObservationLoadOptions& options) {
  AUSDB_ASSIGN_OR_RETURN(size_t key_idx,
                         table.ColumnIndex(options.key_column));
  AUSDB_ASSIGN_OR_RETURN(size_t value_idx,
                         table.ColumnIndex(options.value_column));

  LoadedObservations out;

  // Group values per key, preserving first-appearance order of keys.
  std::vector<std::string> key_order;
  std::unordered_map<std::string, std::vector<double>> groups;
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const std::string& key = row[key_idx];
    const std::string& raw = row[value_idx];
    char* end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    Status row_status = Status::OK();
    if (end == raw.c_str() || *end != '\0') {
      row_status = Status::ParseError("row " + std::to_string(r + 2) +
                                      ": value '" + raw +
                                      "' is not numeric");
    } else if (!std::isfinite(value)) {
      row_status = Status::ParseError("row " + std::to_string(r + 2) +
                                      ": value '" + raw +
                                      "' is not finite");
    }
    if (!row_status.ok()) {
      if (options.strict) return row_status;
      out.quarantined.push_back({r + 2, raw, std::move(row_status)});
      continue;
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) key_order.push_back(key);
    it->second.push_back(value);
  }

  AUSDB_RETURN_NOT_OK(out.schema.AddField(
      {options.key_column, engine::FieldType::kString}));
  AUSDB_RETURN_NOT_OK(out.schema.AddField(
      {options.value_column, engine::FieldType::kUncertain}));

  for (const std::string& key : key_order) {
    const auto& values = groups[key];
    const size_t required =
        std::max<size_t>(options.min_observations,
                         options.learn_as == LearnAs::kGaussian ? 2 : 1);
    if (values.size() < required) {
      out.skipped_keys.push_back(key);
      continue;
    }
    Result<dist::LearnedDistribution> learned =
        Status::Internal("unset");
    switch (options.learn_as) {
      case LearnAs::kHistogram:
        learned = dist::LearnHistogram(values, options.histogram);
        break;
      case LearnAs::kGaussian:
        learned = dist::LearnGaussian(values);
        break;
      case LearnAs::kEmpirical:
        learned = dist::LearnEmpirical(values);
        break;
    }
    AUSDB_RETURN_NOT_OK(learned.status());
    out.tuples.emplace_back(std::vector<expr::Value>{
        expr::Value(key), expr::Value(dist::RandomVar(*learned))});
  }
  return out;
}

Result<LoadedObservations> LoadObservationsFromFile(
    const std::string& path, const ObservationLoadOptions& options) {
  CsvParseOptions csv_options;
  csv_options.strict = options.strict;
  AUSDB_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, csv_options));
  AUSDB_ASSIGN_OR_RETURN(LoadedObservations out,
                         LoadObservations(table, options));
  // Rows the lenient CSV parser skipped are part of the accounting too.
  for (const CsvError& e : table.errors) {
    out.quarantined.push_back(
        {e.record, std::string(), Status::ParseError(e.reason)});
  }
  return out;
}

}  // namespace io
}  // namespace ausdb
