#ifndef AUSDB_IO_CSV_H_
#define AUSDB_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace ausdb {
namespace io {

/// A row the lenient parser skipped, with its 1-based record number
/// (the header is record 1) and the reason.
struct CsvError {
  size_t record;
  std::string reason;
};

/// Options of ParseCsv / ReadCsvFile.
struct CsvParseOptions {
  /// Strict (the default, and the historical behavior): any malformed
  /// record fails the whole parse. Lenient: structurally recoverable
  /// defects (ragged rows) are skipped and recorded in CsvTable::errors;
  /// defects that make record boundaries ambiguous (unterminated quote,
  /// missing header) still fail.
  bool strict = true;
};

/// A parsed CSV table: header names plus rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Records skipped by the lenient parser; empty in strict mode.
  std::vector<CsvError> errors;

  /// Index of a header column; NotFound if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;
};

/// \brief Parses CSV text (RFC-4180 subset: quoted fields with embedded
/// commas/newlines and doubled quotes; both \n and \r\n row endings).
/// The first record is the header. In strict mode, fails with ParseError
/// on ragged rows or unterminated quotes.
Result<CsvTable> ParseCsv(std::string_view text,
                          const CsvParseOptions& options = {});

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvParseOptions& options = {});

}  // namespace io
}  // namespace ausdb

#endif  // AUSDB_IO_CSV_H_
