#ifndef AUSDB_IO_CSV_H_
#define AUSDB_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace ausdb {
namespace io {

/// A parsed CSV table: header names plus rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; NotFound if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;
};

/// \brief Parses CSV text (RFC-4180 subset: quoted fields with embedded
/// commas/newlines and doubled quotes; both \n and \r\n row endings).
/// The first record is the header. Fails with ParseError on ragged rows
/// or unterminated quotes.
Result<CsvTable> ParseCsv(std::string_view text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

}  // namespace io
}  // namespace ausdb

#endif  // AUSDB_IO_CSV_H_
