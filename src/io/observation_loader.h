#ifndef AUSDB_IO_OBSERVATION_LOADER_H_
#define AUSDB_IO_OBSERVATION_LOADER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/learner.h"
#include "src/engine/schema.h"
#include "src/engine/tuple.h"
#include "src/io/csv.h"

namespace ausdb {
namespace io {

/// Which distribution family LoadObservations learns per key.
enum class LearnAs {
  kHistogram,
  kGaussian,
  kEmpirical,
};

/// Options of LoadObservations.
struct ObservationLoadOptions {
  /// Column holding the entity id (the paper's Road_ID).
  std::string key_column;
  /// Column holding the numeric observation (the paper's Delay).
  std::string value_column;

  LearnAs learn_as = LearnAs::kHistogram;
  dist::HistogramLearnOptions histogram;

  /// Keys with fewer observations than this are skipped (they cannot
  /// support the chosen learner, e.g. a Gaussian needs 2).
  size_t min_observations = 1;
};

/// A loaded uncertain stream: one tuple per key, in first-appearance
/// order, with schema (key:string, value:uncertain).
struct LoadedObservations {
  engine::Schema schema;
  std::vector<engine::Tuple> tuples;
  /// Keys skipped for having fewer than min_observations rows.
  std::vector<std::string> skipped_keys;
};

/// \brief The paper's Figure 1 transformation: raw observation records
/// (key, value) are grouped per key and each group is learned into a
/// single distribution-valued tuple carrying its sample-size provenance.
///
/// Non-numeric values fail with ParseError naming the offending row.
Result<LoadedObservations> LoadObservations(
    const CsvTable& table, const ObservationLoadOptions& options);

/// Convenience: read the CSV file then LoadObservations.
Result<LoadedObservations> LoadObservationsFromFile(
    const std::string& path, const ObservationLoadOptions& options);

}  // namespace io
}  // namespace ausdb

#endif  // AUSDB_IO_OBSERVATION_LOADER_H_
