#ifndef AUSDB_IO_OBSERVATION_LOADER_H_
#define AUSDB_IO_OBSERVATION_LOADER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dist/learner.h"
#include "src/engine/schema.h"
#include "src/engine/tuple.h"
#include "src/io/csv.h"

namespace ausdb {
namespace io {

/// Which distribution family LoadObservations learns per key.
enum class LearnAs {
  kHistogram,
  kGaussian,
  kEmpirical,
};

/// Options of LoadObservations.
struct ObservationLoadOptions {
  /// Column holding the entity id (the paper's Road_ID).
  std::string key_column;
  /// Column holding the numeric observation (the paper's Delay).
  std::string value_column;

  LearnAs learn_as = LearnAs::kHistogram;
  dist::HistogramLearnOptions histogram;

  /// Keys with fewer observations than this are skipped (they cannot
  /// support the chosen learner, e.g. a Gaussian needs 2).
  size_t min_observations = 1;

  /// Strict (the default, and the historical behavior): a malformed row
  /// (non-numeric or non-finite value) fails the whole load. Lenient:
  /// malformed rows are diverted to LoadedObservations::quarantined —
  /// with their row number and reason — and the load continues; no row
  /// is ever silently dropped.
  bool strict = true;
};

/// A malformed input row diverted by the lenient loader.
struct QuarantinedRow {
  /// 1-based CSV record number (the header is row 1).
  size_t row;
  /// The offending raw cell (empty for rows the CSV parser skipped).
  std::string raw_value;
  /// Why the row was rejected.
  Status status;
};

/// A loaded uncertain stream: one tuple per key, in first-appearance
/// order, with schema (key:string, value:uncertain).
struct LoadedObservations {
  engine::Schema schema;
  std::vector<engine::Tuple> tuples;
  /// Keys skipped for having fewer than min_observations rows.
  std::vector<std::string> skipped_keys;
  /// Malformed rows diverted by the lenient loader (strict=false);
  /// always empty in strict mode.
  std::vector<QuarantinedRow> quarantined;
};

/// \brief The paper's Figure 1 transformation: raw observation records
/// (key, value) are grouped per key and each group is learned into a
/// single distribution-valued tuple carrying its sample-size provenance.
///
/// In strict mode, non-numeric values fail with ParseError naming the
/// offending row; in lenient mode they are quarantined instead.
Result<LoadedObservations> LoadObservations(
    const CsvTable& table, const ObservationLoadOptions& options);

/// Convenience: read the CSV file then LoadObservations. In lenient
/// mode the CSV parse is lenient too: structurally ragged records are
/// quarantined alongside unparseable values.
Result<LoadedObservations> LoadObservationsFromFile(
    const std::string& path, const ObservationLoadOptions& options);

}  // namespace io
}  // namespace ausdb

#endif  // AUSDB_IO_OBSERVATION_LOADER_H_
