#ifndef AUSDB_WORKLOAD_RANDOM_QUERY_H_
#define AUSDB_WORKLOAD_RANDOM_QUERY_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/expr/expr.h"
#include "src/workload/synthetic.h"

namespace ausdb {
namespace workload {

/// Options of the random query generator (paper Section V-C).
struct RandomQueryOptions {
  /// Number of uncertain input columns (each assigned a random family).
  size_t num_columns = 3;

  /// Number of operator applications in the expression tree.
  size_t num_operators = 4;

  /// When true, restrict to normal distributions and the {+, -}
  /// operators — the Figure 5(b) setting where the query result is
  /// exactly Gaussian.
  bool normal_only_linear = false;
};

/// A generated random query: the expression plus its input columns.
struct RandomQuery {
  expr::ExprPtr expression;
  /// Column i is named column_names[i] and carries family families[i].
  std::vector<std::string> column_names;
  std::vector<Family> families;

  std::string ToString() const;
};

/// \brief Generates a random query expression by assigning equal
/// probabilities to the six operators +, -, *, /, SQRT(ABS(.)), SQUARE
/// over uncertain columns drawn from the five synthetic families
/// (Section V-C's workload).
///
/// Every column is referenced at least once.
RandomQuery GenerateRandomQuery(Rng& rng,
                                const RandomQueryOptions& options = {});

}  // namespace workload
}  // namespace ausdb

#endif  // AUSDB_WORKLOAD_RANDOM_QUERY_H_
