#ifndef AUSDB_WORKLOAD_SYNTHETIC_H_
#define AUSDB_WORKLOAD_SYNTHETIC_H_

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace ausdb {
namespace workload {

/// The paper's five synthetic distribution families (Section V-A), with
/// its exact parameters: exponential(lambda=1), Gamma(k=2, theta=2.0),
/// normal(mu=1, sigma^2=1), uniform(0,1), Weibull(lambda=1, k=1).
enum class Family {
  kExponential,
  kGamma,
  kNormal,
  kUniform,
  kWeibull,
};

inline constexpr Family kAllFamilies[] = {
    Family::kExponential, Family::kGamma, Family::kNormal,
    Family::kUniform, Family::kWeibull};

std::string_view FamilyToString(Family family);

/// One draw from the family with the paper's parameters.
double SampleFamily(Rng& rng, Family family);

/// n iid draws.
std::vector<double> SampleFamilyMany(Rng& rng, Family family, size_t n);

/// True expectation of the family.
double FamilyMean(Family family);

/// True variance of the family.
double FamilyVariance(Family family);

/// Exact CDF of the family (for ground truth in power experiments).
double FamilyCdf(Family family, double x);

/// Exact quantile of the family: x with CDF(x) = p. Used by the pTest
/// power experiment to pick v with Pr(X > v) = target.
double FamilyQuantile(Family family, double p);

}  // namespace workload
}  // namespace ausdb

#endif  // AUSDB_WORKLOAD_SYNTHETIC_H_
