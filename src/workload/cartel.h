#ifndef AUSDB_WORKLOAD_CARTEL_H_
#define AUSDB_WORKLOAD_CARTEL_H_

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"

namespace ausdb {
namespace workload {

/// Options of the CarTel road-delay simulator.
struct CartelOptions {
  /// Number of road segments in the simulated network.
  size_t num_segments = 200;

  /// Observations per segment in the full population pool; the paper's
  /// experiments require at least 600 per chosen segment.
  size_t observations_per_segment = 800;

  /// Segments per route (the paper reports ~20 on average).
  size_t route_length = 20;

  uint64_t seed = 0xCA47E1ull;
};

/// \brief Synthetic substitute for the proprietary MIT CarTel road-delay
/// trace (see DESIGN.md Section 3).
///
/// Each segment's delay population is lognormal with segment-specific
/// parameters — right-skewed and positive like real traffic delays, which
/// is exactly the non-normality regime the paper's experiments probe. The
/// full per-segment pool acts as ground truth ("we consider the
/// distribution from the complete sample as the true distribution"); the
/// experiments subsample it without replacement.
class CartelSimulator {
 public:
  explicit CartelSimulator(CartelOptions options = {});

  size_t num_segments() const { return populations_.size(); }
  size_t population_size() const {
    return options_.observations_per_segment;
  }

  /// Full observation pool of a segment (the "true" sample).
  const std::vector<double>& Population(size_t segment) const;

  /// Ground-truth mean of a segment (over the full pool).
  double TrueMean(size_t segment) const;

  /// Ground-truth (population) variance of a segment.
  double TrueVariance(size_t segment) const;

  /// A size-n sample drawn uniformly at random WITHOUT replacement from
  /// the segment's pool — the paper's Section V-B methodology. Fails with
  /// InvalidArgument if n exceeds the pool.
  Result<std::vector<double>> DrawSample(size_t segment, size_t n,
                                         Rng& rng) const;

  /// A random route: route_length distinct segments.
  std::vector<size_t> MakeRoute(Rng& rng) const;

  /// n de facto observations of a route's total delay: observation j is
  /// the sum over the route's segments of the j-th element of an
  /// independently drawn size-n per-segment sample (Definition 2).
  Result<std::vector<double>> RouteDelayObservations(
      const std::vector<size_t>& route, size_t n, Rng& rng) const;

  /// Ground-truth mean total delay of a route.
  double TrueRouteMean(const std::vector<size_t>& route) const;

  /// A pair of routes sharing all but one segment, where the differing
  /// segments have adjacent true means — so the routes' true mean total
  /// delays are intentionally close (the paper's Section V-D setup).
  /// first has the smaller true mean.
  struct RoutePair {
    std::vector<size_t> lesser;
    std::vector<size_t> greater;
    double mean_gap;  ///< TrueRouteMean(greater) - TrueRouteMean(lesser)
  };
  RoutePair MakeCloseRoutePair(Rng& rng) const;

  /// Like MakeCloseRoutePair, but the differing segments are `rank_gap`
  /// positions apart in the true-mean ordering — larger rank_gap gives an
  /// easier comparison. rank_gap=1 is MakeCloseRoutePair.
  RoutePair MakeRoutePairWithRankGap(Rng& rng, size_t rank_gap) const;

 private:
  CartelOptions options_;
  std::vector<std::vector<double>> populations_;
  std::vector<double> true_means_;
  std::vector<double> true_variances_;
  /// Segment ids sorted by true mean (for close-pair construction).
  std::vector<size_t> by_mean_;
};

}  // namespace workload
}  // namespace ausdb

#endif  // AUSDB_WORKLOAD_CARTEL_H_
