#include "src/workload/random_query.h"

#include <sstream>

#include "src/common/logging.h"

namespace ausdb {
namespace workload {

std::string RandomQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT " << expression->ToString() << " FROM S  -- columns:";
  for (size_t i = 0; i < column_names.size(); ++i) {
    os << " " << column_names[i] << "~" << FamilyToString(families[i]);
  }
  return os.str();
}

namespace {

// The six operators with equal probability; the last two are unary.
enum class QueryOp { kAdd, kSub, kMul, kDiv, kSqrtAbs, kSquare };

QueryOp RandomOp(Rng& rng, bool linear_only) {
  if (linear_only) {
    return rng.NextBelow(2) == 0 ? QueryOp::kAdd : QueryOp::kSub;
  }
  return static_cast<QueryOp>(rng.NextBelow(6));
}

}  // namespace

RandomQuery GenerateRandomQuery(Rng& rng,
                                const RandomQueryOptions& options) {
  AUSDB_CHECK(options.num_columns >= 1) << "need at least one column";
  RandomQuery q;
  for (size_t i = 0; i < options.num_columns; ++i) {
    q.column_names.push_back("x" + std::to_string(i));
    if (options.normal_only_linear) {
      q.families.push_back(Family::kNormal);
    } else {
      q.families.push_back(
          static_cast<Family>(rng.NextBelow(std::size(kAllFamilies))));
    }
  }

  // Start from one leaf per column (guaranteeing every column is used),
  // then repeatedly merge / wrap subtrees with random operators until the
  // operator budget is spent and a single expression remains.
  std::vector<expr::ExprPtr> forest;
  for (const auto& name : q.column_names) {
    forest.push_back(expr::Col(name));
  }

  size_t ops_remaining = options.num_operators;
  // Merging k trees into one takes k-1 binary operators, so ensure the
  // budget suffices.
  if (ops_remaining + 1 < forest.size()) {
    ops_remaining = forest.size() - 1;
  }

  while (forest.size() > 1 || ops_remaining > 0) {
    const bool must_merge = forest.size() > 1 &&
                            ops_remaining <= forest.size() - 1;
    const QueryOp op = RandomOp(rng, options.normal_only_linear);
    const bool is_unary =
        !must_merge && (op == QueryOp::kSqrtAbs || op == QueryOp::kSquare);
    if (is_unary || forest.size() == 1) {
      // Wrap a random tree with a unary operator (or, if only one tree
      // remains but the op is binary, pair it with itself/a constant-free
      // redraw as unary to keep shapes simple).
      const size_t i = rng.NextBelow(forest.size());
      switch (op) {
        case QueryOp::kSqrtAbs:
          forest[i] = expr::SqrtAbs(forest[i]);
          break;
        case QueryOp::kSquare:
          forest[i] = expr::Square(forest[i]);
          break;
        default:
          // A binary op with a single remaining tree: apply it between
          // the tree and a fresh reference to a random column.
          forest[i] = [&] {
            const auto& col =
                q.column_names[rng.NextBelow(q.column_names.size())];
            switch (op) {
              case QueryOp::kAdd:
                return expr::Add(forest[i], expr::Col(col));
              case QueryOp::kSub:
                return expr::Sub(forest[i], expr::Col(col));
              case QueryOp::kMul:
                return expr::Mul(forest[i], expr::Col(col));
              default:
                return expr::Div(forest[i], expr::Col(col));
            }
          }();
          break;
      }
    } else {
      // Merge two random distinct trees.
      const size_t i = rng.NextBelow(forest.size());
      size_t j = rng.NextBelow(forest.size() - 1);
      if (j >= i) ++j;
      expr::ExprPtr merged;
      switch (op) {
        case QueryOp::kAdd:
          merged = expr::Add(forest[i], forest[j]);
          break;
        case QueryOp::kSub:
          merged = expr::Sub(forest[i], forest[j]);
          break;
        case QueryOp::kMul:
          merged = expr::Mul(forest[i], forest[j]);
          break;
        case QueryOp::kDiv:
          merged = expr::Div(forest[i], forest[j]);
          break;
        default:
          merged = expr::Add(forest[i], forest[j]);  // unreachable
          break;
      }
      forest[i] = std::move(merged);
      forest.erase(forest.begin() + static_cast<ptrdiff_t>(j));
    }
    if (ops_remaining > 0) --ops_remaining;
    if (forest.size() == 1 && ops_remaining == 0) break;
  }

  q.expression = forest.front();
  return q;
}

}  // namespace workload
}  // namespace ausdb
