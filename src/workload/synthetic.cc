#include "src/workload/synthetic.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/stats/quantiles.h"
#include "src/stats/random_variates.h"
#include "src/stats/special_functions.h"

namespace ausdb {
namespace workload {

std::string_view FamilyToString(Family family) {
  switch (family) {
    case Family::kExponential:
      return "exponential";
    case Family::kGamma:
      return "gamma";
    case Family::kNormal:
      return "normal";
    case Family::kUniform:
      return "uniform";
    case Family::kWeibull:
      return "weibull";
  }
  return "unknown";
}

double SampleFamily(Rng& rng, Family family) {
  switch (family) {
    case Family::kExponential:
      return stats::SampleExponential(rng, 1.0);
    case Family::kGamma:
      return stats::SampleGamma(rng, 2.0, 2.0);
    case Family::kNormal:
      return stats::SampleNormal(rng, 1.0, 1.0);
    case Family::kUniform:
      return stats::SampleUniform(rng, 0.0, 1.0);
    case Family::kWeibull:
      return stats::SampleWeibull(rng, 1.0, 1.0);
  }
  return 0.0;
}

std::vector<double> SampleFamilyMany(Rng& rng, Family family, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(SampleFamily(rng, family));
  return out;
}

double FamilyMean(Family family) {
  switch (family) {
    case Family::kExponential:
      return 1.0;
    case Family::kGamma:
      return 4.0;  // k * theta
    case Family::kNormal:
      return 1.0;
    case Family::kUniform:
      return 0.5;
    case Family::kWeibull:
      return 1.0;  // lambda * Gamma(1 + 1/k) = 1 * Gamma(2) = 1
  }
  return 0.0;
}

double FamilyVariance(Family family) {
  switch (family) {
    case Family::kExponential:
      return 1.0;
    case Family::kGamma:
      return 8.0;  // k * theta^2
    case Family::kNormal:
      return 1.0;
    case Family::kUniform:
      return 1.0 / 12.0;
    case Family::kWeibull:
      return 1.0;  // exponential(1)
  }
  return 0.0;
}

double FamilyCdf(Family family, double x) {
  switch (family) {
    case Family::kExponential:
    case Family::kWeibull:  // Weibull(1, 1) == exponential(1)
      return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x);
    case Family::kGamma:
      // Gamma(k=2, theta=2): P(2, x/2).
      return x <= 0.0 ? 0.0 : stats::RegularizedGammaP(2.0, x / 2.0);
    case Family::kNormal:
      return stats::NormalCdf(x - 1.0);
    case Family::kUniform:
      return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  }
  return 0.0;
}

double FamilyQuantile(Family family, double p) {
  AUSDB_CHECK(p > 0.0 && p < 1.0) << "quantile requires p in (0,1)";
  switch (family) {
    case Family::kExponential:
    case Family::kWeibull:
      return -std::log(1.0 - p);
    case Family::kGamma:
      return 2.0 * stats::InverseRegularizedGammaP(2.0, p);
    case Family::kNormal:
      return 1.0 + stats::NormalQuantile(p);
    case Family::kUniform:
      return p;
  }
  return 0.0;
}

}  // namespace workload
}  // namespace ausdb
