#ifndef AUSDB_WORKLOAD_FAMILY_DISTRIBUTION_H_
#define AUSDB_WORKLOAD_FAMILY_DISTRIBUTION_H_

#include "src/dist/distribution.h"
#include "src/workload/synthetic.h"

namespace ausdb {
namespace workload {

/// \brief Exact parametric Distribution for one of the paper's five
/// synthetic families — used as ground truth in the evaluation harnesses
/// (known CDF, mean and variance; sampling via the exact generators).
class FamilyDist final : public dist::Distribution {
 public:
  explicit FamilyDist(Family family) : family_(family) {}

  dist::DistributionKind kind() const override {
    return dist::DistributionKind::kParametric;
  }
  double Mean() const override { return FamilyMean(family_); }
  double Variance() const override { return FamilyVariance(family_); }
  double Cdf(double x) const override { return FamilyCdf(family_, x); }
  double Sample(Rng& rng) const override {
    return SampleFamily(rng, family_);
  }
  std::string ToString() const override {
    return std::string(FamilyToString(family_)) + "(paper params)";
  }
  std::shared_ptr<dist::Distribution> Clone() const override {
    return std::make_shared<FamilyDist>(family_);
  }

  Family family() const { return family_; }

 private:
  Family family_;
};

}  // namespace workload
}  // namespace ausdb

#endif  // AUSDB_WORKLOAD_FAMILY_DISTRIBUTION_H_
