#include "src/workload/cartel.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/stats/descriptive.h"
#include "src/stats/random_variates.h"

namespace ausdb {
namespace workload {

CartelSimulator::CartelSimulator(CartelOptions options)
    : options_(options) {
  AUSDB_CHECK(options_.num_segments >= 2)
      << "CarTel simulator needs at least 2 segments";
  AUSDB_CHECK(options_.route_length >= 1 &&
              options_.route_length <= options_.num_segments)
      << "route length must be in [1, num_segments]";

  Rng rng(options_.seed);
  populations_.resize(options_.num_segments);
  true_means_.resize(options_.num_segments);
  true_variances_.resize(options_.num_segments);

  for (size_t s = 0; s < options_.num_segments; ++s) {
    // Segment-specific lognormal parameters: median delay exp(mu_log) in
    // roughly [20s, 90s], dispersion sigma_log in [0.2, 0.6].
    const double mu_log = rng.NextDouble(3.0, 4.5);
    const double sigma_log = rng.NextDouble(0.2, 0.6);
    auto& pop = populations_[s];
    pop.reserve(options_.observations_per_segment);
    for (size_t i = 0; i < options_.observations_per_segment; ++i) {
      pop.push_back(stats::SampleLognormal(rng, mu_log, sigma_log));
    }
    const auto summary = stats::Summarize(pop);
    true_means_[s] = summary.mean;
    true_variances_[s] = summary.population_variance;
  }

  by_mean_.resize(options_.num_segments);
  std::iota(by_mean_.begin(), by_mean_.end(), size_t{0});
  std::sort(by_mean_.begin(), by_mean_.end(), [this](size_t a, size_t b) {
    return true_means_[a] < true_means_[b];
  });
}

const std::vector<double>& CartelSimulator::Population(
    size_t segment) const {
  AUSDB_CHECK(segment < populations_.size()) << "segment out of range";
  return populations_[segment];
}

double CartelSimulator::TrueMean(size_t segment) const {
  AUSDB_CHECK(segment < true_means_.size()) << "segment out of range";
  return true_means_[segment];
}

double CartelSimulator::TrueVariance(size_t segment) const {
  AUSDB_CHECK(segment < true_variances_.size()) << "segment out of range";
  return true_variances_[segment];
}

Result<std::vector<double>> CartelSimulator::DrawSample(size_t segment,
                                                        size_t n,
                                                        Rng& rng) const {
  if (segment >= populations_.size()) {
    return Status::InvalidArgument("segment out of range");
  }
  const auto& pop = populations_[segment];
  if (n > pop.size()) {
    return Status::InvalidArgument(
        "sample size exceeds the segment population");
  }
  // Partial Fisher-Yates over an index array: without replacement.
  std::vector<size_t> idx(pop.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = i + rng.NextBelow(idx.size() - i);
    std::swap(idx[i], idx[j]);
    out.push_back(pop[idx[i]]);
  }
  return out;
}

std::vector<size_t> CartelSimulator::MakeRoute(Rng& rng) const {
  std::vector<size_t> idx(populations_.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::vector<size_t> route;
  route.reserve(options_.route_length);
  for (size_t i = 0; i < options_.route_length; ++i) {
    const size_t j = i + rng.NextBelow(idx.size() - i);
    std::swap(idx[i], idx[j]);
    route.push_back(idx[i]);
  }
  return route;
}

Result<std::vector<double>> CartelSimulator::RouteDelayObservations(
    const std::vector<size_t>& route, size_t n, Rng& rng) const {
  if (route.empty()) {
    return Status::InvalidArgument("route must not be empty");
  }
  std::vector<double> totals(n, 0.0);
  for (size_t segment : route) {
    AUSDB_ASSIGN_OR_RETURN(std::vector<double> sample,
                           DrawSample(segment, n, rng));
    for (size_t j = 0; j < n; ++j) totals[j] += sample[j];
  }
  return totals;
}

double CartelSimulator::TrueRouteMean(
    const std::vector<size_t>& route) const {
  double total = 0.0;
  for (size_t segment : route) total += TrueMean(segment);
  return total;
}

CartelSimulator::RoutePair CartelSimulator::MakeCloseRoutePair(
    Rng& rng) const {
  return MakeRoutePairWithRankGap(rng, 1);
}

CartelSimulator::RoutePair CartelSimulator::MakeRoutePairWithRankGap(
    Rng& rng, size_t rank_gap) const {
  AUSDB_CHECK(rank_gap >= 1 && rank_gap < by_mean_.size())
      << "rank_gap must be in [1, num_segments)";
  // Two segments `rank_gap` apart in the true-mean ordering differ by a
  // controlled amount; routes sharing every other segment then have that
  // same gap in total mean delay.
  const size_t pos = rng.NextBelow(by_mean_.size() - rank_gap);
  const size_t seg_lo = by_mean_[pos];
  const size_t seg_hi = by_mean_[pos + rank_gap];

  // Shared remainder of the route, avoiding both special segments.
  std::vector<size_t> idx;
  idx.reserve(populations_.size());
  for (size_t s = 0; s < populations_.size(); ++s) {
    if (s != seg_lo && s != seg_hi) idx.push_back(s);
  }
  std::vector<size_t> shared;
  const size_t shared_len =
      options_.route_length > 0 ? options_.route_length - 1 : 0;
  for (size_t i = 0; i < shared_len && i < idx.size(); ++i) {
    const size_t j = i + rng.NextBelow(idx.size() - i);
    std::swap(idx[i], idx[j]);
    shared.push_back(idx[i]);
  }

  RoutePair pair;
  pair.lesser = shared;
  pair.lesser.push_back(seg_lo);
  pair.greater = shared;
  pair.greater.push_back(seg_hi);
  pair.mean_gap = TrueMean(seg_hi) - TrueMean(seg_lo);
  return pair;
}

}  // namespace workload
}  // namespace ausdb
