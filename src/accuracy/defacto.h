#ifndef AUSDB_ACCURACY_DEFACTO_H_
#define AUSDB_ACCURACY_DEFACTO_H_

#include <cstddef>
#include <span>

#include "src/common/result.h"

namespace ausdb {
namespace accuracy {

/// \brief Lemma 3: the de facto (d.f.) sample size of an output random
/// variable Y = f(X_1, ..., X_d) is min_i n_i over the input sample sizes.
///
/// Inputs equal to dist::RandomVar::kCertainSampleSize (deterministic
/// fields) do not constrain the output. If every input is deterministic,
/// the result is kCertainSampleSize. An empty span fails with
/// InvalidArgument.
Result<size_t> DeFactoSampleSize(std::span<const size_t> input_sizes);

/// \brief Lemma 4: the number of distinct d.f. samples of Y is
///   c = prod_{i=2..d} n_i! / (n_i - n)!
/// with inputs sorted so n_1 <= ... <= n_d and n = n_1. Returned in log
/// space (natural log) because c overflows double factorially fast.
///
/// Deterministic inputs are excluded. Fails with InvalidArgument when no
/// uncertain inputs are given.
Result<double> LogDeFactoSampleCount(std::span<const size_t> input_sizes);

}  // namespace accuracy
}  // namespace ausdb

#endif  // AUSDB_ACCURACY_DEFACTO_H_
