#include "src/accuracy/accuracy_info.h"

#include <cmath>
#include <sstream>

#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/dist/histogram.h"

namespace ausdb {
namespace accuracy {

std::string AccuracyInfo::ToString() const {
  std::ostringstream os;
  os << "AccuracyInfo(n=" << sample_size << ", method="
     << (method == AccuracyMethod::kAnalytical ? "analytical" : "bootstrap");
  if (mean_ci) os << ", mean=" << mean_ci->ToString();
  if (variance_ci) os << ", var=" << variance_ci->ToString();
  if (!bin_cis.empty()) os << ", bins=" << bin_cis.size();
  os << ")";
  return os.str();
}

Result<AccuracyInfo> AnalyticalAccuracy(const dist::Distribution& d,
                                        size_t n, double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  AccuracyInfo info;
  info.sample_size = n;
  info.method = AccuracyMethod::kAnalytical;

  if (d.kind() == dist::DistributionKind::kPoint) {
    // Deterministic value: intervals of length zero at full confidence.
    const double v = d.Mean();
    info.mean_ci = ConfidenceInterval{v, v, confidence};
    info.variance_ci = ConfidenceInterval{0.0, 0.0, confidence};
    return info;
  }

  if (n < 2) {
    return Status::InsufficientData(
        "analytical accuracy requires sample size >= 2; got " +
        std::to_string(n));
  }

  // Lemma 2 for mean and variance, using the distribution's moments as
  // the sample statistics ybar and s (Theorem 1).
  AUSDB_ASSIGN_OR_RETURN(ConfidenceInterval mean_ci,
                         MeanInterval(d.Mean(), d.StdDev(), n, confidence));
  AUSDB_ASSIGN_OR_RETURN(ConfidenceInterval var_ci,
                         VarianceInterval(d.StdDev(), n, confidence));
  info.mean_ci = mean_ci;
  info.variance_ci = var_ci;

  // Lemma 1 per-bin intervals for histogram distributions: one batched
  // pass over the contiguous bin-height array (byte-identical to the
  // per-bin ProportionInterval calls it replaces).
  if (d.kind() == dist::DistributionKind::kHistogram) {
    const auto& hist = static_cast<const dist::HistogramDist&>(d);
    info.bin_cis.resize(hist.bin_count());
    AUSDB_RETURN_NOT_OK(
        ProportionIntervalsMany(hist.probs(), n, confidence,
                                info.bin_cis));
  }
  return info;
}

Result<AccuracyInfo> AnalyticalAccuracy(const dist::RandomVar& rv,
                                        double confidence) {
  if (rv.is_certain()) {
    return AnalyticalAccuracy(*rv.distribution(), 0, confidence);
  }
  return AnalyticalAccuracy(*rv.distribution(), rv.sample_size(),
                            confidence);
}

Result<ConfidenceInterval> TupleProbabilityInterval(double tuple_prob,
                                                    size_t n,
                                                    double confidence) {
  return ProportionInterval(tuple_prob, n, confidence);
}

}  // namespace accuracy
}  // namespace ausdb
