#ifndef AUSDB_ACCURACY_WEIGHTED_ACCURACY_H_
#define AUSDB_ACCURACY_WEIGHTED_ACCURACY_H_

#include <span>

#include "src/accuracy/confidence_interval.h"
#include "src/common/result.h"

namespace ausdb {
namespace accuracy {

/// \brief Accuracy from weighted samples — the paper's future-work
/// extension (Section VII): observations carry weights (e.g. recency
/// decay), and every Lemma 1/2 formula runs with Kish's effective sample
/// size n_eff in place of n. Equal weights reduce exactly to the
/// unweighted lemmas.

/// Lemma 2 mean interval from a weighted sample: weighted mean ±
/// t_{(1-c)/2, n_eff - 1} * s_w / sqrt(n_eff) (z for n_eff >= 30).
/// Requires n_eff > 1.
Result<ConfidenceInterval> WeightedMeanInterval(
    std::span<const double> values, std::span<const double> weights,
    double confidence);

/// Lemma 2 variance interval with n_eff - 1 (possibly fractional)
/// chi-square degrees of freedom.
Result<ConfidenceInterval> WeightedVarianceInterval(
    std::span<const double> values, std::span<const double> weights,
    double confidence);

/// Lemma 1 interval for a weighted proportion: `weighted_p` is the
/// weighted fraction of successes and `effective_n` the weights' Kish
/// size. Dispatches Wald/Wilson on the n_eff * p rule like Lemma 1.
Result<ConfidenceInterval> WeightedProportionInterval(double weighted_p,
                                                      double effective_n,
                                                      double confidence);

}  // namespace accuracy
}  // namespace ausdb

#endif  // AUSDB_ACCURACY_WEIGHTED_ACCURACY_H_
