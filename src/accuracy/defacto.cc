#include "src/accuracy/defacto.h"

#include <algorithm>
#include <vector>

#include "src/dist/random_var.h"
#include "src/stats/special_functions.h"

namespace ausdb {
namespace accuracy {

Result<size_t> DeFactoSampleSize(std::span<const size_t> input_sizes) {
  if (input_sizes.empty()) {
    return Status::InvalidArgument(
        "de facto sample size needs at least one input");
  }
  size_t n = dist::RandomVar::kCertainSampleSize;
  for (size_t s : input_sizes) n = std::min(n, s);
  return n;
}

Result<double> LogDeFactoSampleCount(std::span<const size_t> input_sizes) {
  std::vector<size_t> uncertain;
  uncertain.reserve(input_sizes.size());
  for (size_t s : input_sizes) {
    if (s != dist::RandomVar::kCertainSampleSize) uncertain.push_back(s);
  }
  if (uncertain.empty()) {
    return Status::InvalidArgument(
        "de facto sample count needs at least one uncertain input");
  }
  std::sort(uncertain.begin(), uncertain.end());
  const double n = static_cast<double>(uncertain[0]);
  double log_c = 0.0;
  for (size_t i = 1; i < uncertain.size(); ++i) {
    const double ni = static_cast<double>(uncertain[i]);
    // log(n_i!/(n_i-n)!) = lgamma(n_i+1) - lgamma(n_i-n+1).
    log_c += stats::LogGamma(ni + 1.0) - stats::LogGamma(ni - n + 1.0);
  }
  return log_c;
}

}  // namespace accuracy
}  // namespace ausdb
