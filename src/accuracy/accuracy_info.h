#ifndef AUSDB_ACCURACY_ACCURACY_INFO_H_
#define AUSDB_ACCURACY_ACCURACY_INFO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/accuracy/confidence_interval.h"
#include "src/common/result.h"
#include "src/dist/random_var.h"

namespace ausdb {
namespace accuracy {

/// How a piece of accuracy information was derived.
enum class AccuracyMethod {
  kAnalytical,  ///< Lemmas 1-2 closed forms (Section II).
  kBootstrap,   ///< BOOTSTRAP-ACCURACY-INFO (Section III).
};

/// \brief The accuracy information attached to a distribution in a query
/// result (paper Section II-B).
///
/// For a histogram distribution, `bin_cis` holds one confidence interval
/// per bin height (Lemma 1's generalized representation
/// {(b_i, p_i1, p_i2, c_i)}). For any distribution, `mean_ci` and
/// `variance_ci` hold the intervals on mu and sigma^2 (Lemma 2).
struct AccuracyInfo {
  /// The (de facto) sample size n the intervals are based on.
  size_t sample_size = 0;

  AccuracyMethod method = AccuracyMethod::kAnalytical;

  std::optional<ConfidenceInterval> mean_ci;
  std::optional<ConfidenceInterval> variance_ci;

  /// One interval per histogram bin; empty for non-histogram
  /// distributions.
  std::vector<ConfidenceInterval> bin_cis;

  std::string ToString() const;
};

/// \brief Theorem 1 analytical path: derives AccuracyInfo for a
/// distribution learned from (or carrying) a sample of size n.
///
/// Histogram distributions get per-bin Lemma 1 intervals plus Lemma 2
/// mean/variance intervals (using the distribution's mean and standard
/// deviation as ybar and s); all other distributions get the Lemma 2
/// intervals only.
Result<AccuracyInfo> AnalyticalAccuracy(const dist::Distribution& d,
                                        size_t n, double confidence);

/// Convenience overload for a RandomVar (uses its d.f. sample size).
/// Deterministic variables yield degenerate zero-length intervals.
Result<AccuracyInfo> AnalyticalAccuracy(const dist::RandomVar& rv,
                                        double confidence);

/// \brief Theorem 1's rule for a result tuple's membership probability:
/// treat it as a one-bin histogram whose bin probability is the tuple
/// probability, and apply Lemma 1 with the boolean variable's d.f. sample
/// size.
Result<ConfidenceInterval> TupleProbabilityInterval(double tuple_prob,
                                                    size_t n,
                                                    double confidence);

}  // namespace accuracy
}  // namespace ausdb

#endif  // AUSDB_ACCURACY_ACCURACY_INFO_H_
