#ifndef AUSDB_ACCURACY_PROPORTION_CI_H_
#define AUSDB_ACCURACY_PROPORTION_CI_H_

#include <cstddef>
#include <span>

#include "src/accuracy/confidence_interval.h"
#include "src/common/result.h"

namespace ausdb {
namespace accuracy {

/// \brief Wald (normal-approximation) interval for a population proportion
/// — the paper's Equation (1):
///   p ± z_{(1-c)/2} * sqrt(p (1-p) / n), clamped into [0, 1].
///
/// Valid when n*p >= 4 and n*(1-p) >= 4; callers should normally use
/// ProportionInterval which applies that rule.
Result<ConfidenceInterval> WaldProportionInterval(double p, size_t n,
                                                  double confidence);

/// \brief Wilson score interval for a population proportion — the paper's
/// Equation (2) — robust for small n*p.
Result<ConfidenceInterval> WilsonProportionInterval(double p, size_t n,
                                                    double confidence);

/// \brief Lemma 1 dispatch: Wald when n*p >= 4 and n*(1-p) >= 4, Wilson
/// score otherwise.
///
/// `p` is the observed bin height (fraction of the n observations in the
/// bin); the returned interval covers the true bin probability with the
/// requested confidence. Fails with InvalidArgument on p outside [0,1] or
/// confidence outside (0,1), and InsufficientData when n == 0.
Result<ConfidenceInterval> ProportionInterval(double p, size_t n,
                                              double confidence);

/// True iff the Lemma 1 normal-approximation condition holds.
bool WaldConditionHolds(double p, size_t n);

/// \brief Lemma 1 over a whole histogram: one ProportionInterval per bin
/// height in `ps`, written to `out[i]` (out.size() must be >= ps.size()).
///
/// Byte-identical to calling ProportionInterval per element — identical
/// Wald/Wilson dispatch and expressions — but the z percentile is hoisted
/// out of the loop and the per-bin arithmetic runs over the contiguous
/// bin-height array with no Result boxing per element. Fails on the first
/// invalid bin height (same validation as the scalar call), leaving `out`
/// unspecified.
Status ProportionIntervalsMany(std::span<const double> ps, size_t n,
                               double confidence,
                               std::span<ConfidenceInterval> out);

}  // namespace accuracy
}  // namespace ausdb

#endif  // AUSDB_ACCURACY_PROPORTION_CI_H_
