#include "src/accuracy/proportion_ci.h"

#include <cmath>
#include <unordered_map>

#include "src/common/math_util.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace accuracy {

namespace {

// The z percentile depends only on the confidence level, which streams
// reuse for every tuple and bin; memoized.
double CachedZ(double confidence) {
  thread_local std::unordered_map<double, double> cache;
  const auto it = cache.find(confidence);
  if (it != cache.end()) return it->second;
  const double z = stats::NormalUpperPercentile((1.0 - confidence) / 2.0);
  cache.emplace(confidence, z);
  return z;
}

Status ValidateProportionArgs(double p, size_t n, double confidence) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("proportion must be in [0,1]");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  if (n == 0) {
    return Status::InsufficientData(
        "proportion interval requires a non-empty sample");
  }
  return Status::OK();
}

}  // namespace

bool WaldConditionHolds(double p, size_t n) {
  const double nn = static_cast<double>(n);
  return nn * p >= 4.0 && nn * (1.0 - p) >= 4.0;
}

Result<ConfidenceInterval> WaldProportionInterval(double p, size_t n,
                                                  double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateProportionArgs(p, n, confidence));
  const double z = CachedZ(confidence);
  const double half = z * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  ConfidenceInterval ci;
  ci.lo = Clamp(p - half, 0.0, 1.0);
  ci.hi = Clamp(p + half, 0.0, 1.0);
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> WilsonProportionInterval(double p, size_t n,
                                                    double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateProportionArgs(p, n, confidence));
  const double z = CachedZ(confidence);
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = p + z2 / (2.0 * nn);
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  ConfidenceInterval ci;
  ci.lo = Clamp((center - half) / denom, 0.0, 1.0);
  ci.hi = Clamp((center + half) / denom, 0.0, 1.0);
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> ProportionInterval(double p, size_t n,
                                              double confidence) {
  if (WaldConditionHolds(p, n)) {
    return WaldProportionInterval(p, n, confidence);
  }
  return WilsonProportionInterval(p, n, confidence);
}

Status ProportionIntervalsMany(std::span<const double> ps, size_t n,
                               double confidence,
                               std::span<ConfidenceInterval> out) {
  if (ps.empty()) return Status::OK();
  AUSDB_RETURN_NOT_OK(ValidateProportionArgs(ps[0], n, confidence));
  // Loop-invariant pieces of both interval formulas, hoisted. CachedZ
  // memoizes, but the map probe per bin still dominates a 3-multiply
  // interval body.
  const double z = CachedZ(confidence);
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double wilson_denom = 1.0 + z2 / nn;
  for (size_t i = 0; i < ps.size(); ++i) {
    const double p = ps[i];
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("proportion must be in [0,1]");
    }
    ConfidenceInterval& ci = out[i];
    ci.confidence = confidence;
    if (nn * p >= 4.0 && nn * (1.0 - p) >= 4.0) {
      // Wald — identical expression to WaldProportionInterval.
      const double half = z * std::sqrt(p * (1.0 - p) / nn);
      ci.lo = Clamp(p - half, 0.0, 1.0);
      ci.hi = Clamp(p + half, 0.0, 1.0);
    } else {
      // Wilson — identical expression to WilsonProportionInterval.
      const double center = p + z2 / (2.0 * nn);
      const double half =
          z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
      ci.lo = Clamp((center - half) / wilson_denom, 0.0, 1.0);
      ci.hi = Clamp((center + half) / wilson_denom, 0.0, 1.0);
    }
  }
  return Status::OK();
}

}  // namespace accuracy
}  // namespace ausdb
