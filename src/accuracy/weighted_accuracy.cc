#include "src/accuracy/weighted_accuracy.h"

#include <cmath>
#include <limits>

#include "src/common/math_util.h"
#include "src/stats/quantiles.h"
#include "src/stats/weighted.h"

namespace ausdb {
namespace accuracy {

namespace {

constexpr double kSmallSampleThresholdReal = 30.0;

Status ValidateConfidence(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  return Status::OK();
}

}  // namespace

Result<ConfidenceInterval> WeightedMeanInterval(
    std::span<const double> values, std::span<const double> weights,
    double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateConfidence(confidence));
  AUSDB_ASSIGN_OR_RETURN(stats::WeightedSummary s,
                         stats::SummarizeWeighted(values, weights));
  if (s.effective_sample_size <= 1.0) {
    return Status::InsufficientData(
        "weighted mean interval requires effective sample size > 1");
  }
  const double q = (1.0 - confidence) / 2.0;
  const double n_eff = s.effective_sample_size;
  const double multiplier =
      n_eff < kSmallSampleThresholdReal
          ? stats::StudentTUpperPercentile(q, n_eff - 1.0)
          : stats::NormalUpperPercentile(q);
  const double half =
      multiplier * std::sqrt(s.sample_variance) / std::sqrt(n_eff);
  ConfidenceInterval ci;
  ci.lo = s.mean - half;
  ci.hi = s.mean + half;
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> WeightedVarianceInterval(
    std::span<const double> values, std::span<const double> weights,
    double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateConfidence(confidence));
  AUSDB_ASSIGN_OR_RETURN(stats::WeightedSummary s,
                         stats::SummarizeWeighted(values, weights));
  if (s.effective_sample_size <= 1.0) {
    return Status::InsufficientData(
        "weighted variance interval requires effective sample size > 1");
  }
  const double dof = s.effective_sample_size - 1.0;
  const double chi_hi =
      stats::ChiSquareUpperPercentile((1.0 - confidence) / 2.0, dof);
  const double chi_lo =
      stats::ChiSquareUpperPercentile((1.0 + confidence) / 2.0, dof);
  ConfidenceInterval ci;
  ci.lo = dof * s.sample_variance / chi_hi;
  ci.hi = chi_lo > 0.0 ? dof * s.sample_variance / chi_lo
                       : std::numeric_limits<double>::infinity();
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> WeightedProportionInterval(double weighted_p,
                                                      double effective_n,
                                                      double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateConfidence(confidence));
  if (!(weighted_p >= 0.0 && weighted_p <= 1.0)) {
    return Status::InvalidArgument("proportion must be in [0,1]");
  }
  if (!(effective_n > 0.0) || !std::isfinite(effective_n)) {
    return Status::InvalidArgument("effective sample size must be > 0");
  }
  const double z = stats::NormalUpperPercentile((1.0 - confidence) / 2.0);
  ConfidenceInterval ci;
  ci.confidence = confidence;
  if (effective_n * weighted_p >= 4.0 &&
      effective_n * (1.0 - weighted_p) >= 4.0) {
    // Wald branch of Lemma 1 with real-valued n_eff.
    const double half =
        z * std::sqrt(weighted_p * (1.0 - weighted_p) / effective_n);
    ci.lo = Clamp(weighted_p - half, 0.0, 1.0);
    ci.hi = Clamp(weighted_p + half, 0.0, 1.0);
    return ci;
  }
  // Wilson branch with real-valued n_eff.
  const double z2 = z * z;
  const double denom = 1.0 + z2 / effective_n;
  const double center = weighted_p + z2 / (2.0 * effective_n);
  const double half =
      z * std::sqrt(weighted_p * (1.0 - weighted_p) / effective_n +
                    z2 / (4.0 * effective_n * effective_n));
  ci.lo = Clamp((center - half) / denom, 0.0, 1.0);
  ci.hi = Clamp((center + half) / denom, 0.0, 1.0);
  return ci;
}

}  // namespace accuracy
}  // namespace ausdb
