#ifndef AUSDB_ACCURACY_CONFIDENCE_INTERVAL_H_
#define AUSDB_ACCURACY_CONFIDENCE_INTERVAL_H_

#include <string>

namespace ausdb {
namespace accuracy {

/// \brief A confidence interval [lo, hi] for a distribution parameter,
/// with the confidence level it was built at.
///
/// The paper's accuracy information is exactly a collection of these: one
/// per histogram bin height, one for the mean, one for the variance, and
/// one for a result tuple's membership probability.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  /// Confidence level in (0, 1), e.g. 0.95.
  double confidence = 0.0;

  double Length() const { return hi - lo; }
  double Midpoint() const { return 0.5 * (lo + hi); }

  /// True iff `value` lies in [lo, hi]. The complement is a "miss" in the
  /// paper's Figure 4(c)/(d) metric.
  bool Contains(double value) const { return value >= lo && value <= hi; }

  std::string ToString() const;
};

/// \brief Intersection of two intervals; empty result collapses to a
/// zero-length interval at the overlap boundary. Confidence is the min of
/// the two (Bonferroni-conservative).
ConfidenceInterval Intersect(const ConfidenceInterval& a,
                             const ConfidenceInterval& b);

}  // namespace accuracy
}  // namespace ausdb

#endif  // AUSDB_ACCURACY_CONFIDENCE_INTERVAL_H_
