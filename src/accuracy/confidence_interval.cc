#include "src/accuracy/confidence_interval.h"

#include <algorithm>
#include <sstream>

namespace ausdb {
namespace accuracy {

std::string ConfidenceInterval::ToString() const {
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "] @" << confidence * 100.0 << "%";
  return os.str();
}

ConfidenceInterval Intersect(const ConfidenceInterval& a,
                             const ConfidenceInterval& b) {
  ConfidenceInterval out;
  out.lo = std::max(a.lo, b.lo);
  out.hi = std::min(a.hi, b.hi);
  if (out.hi < out.lo) out.hi = out.lo;
  out.confidence = std::min(a.confidence, b.confidence);
  return out;
}

}  // namespace accuracy
}  // namespace ausdb
