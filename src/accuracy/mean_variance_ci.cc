#include "src/accuracy/mean_variance_ci.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/common/math_util.h"
#include "src/stats/descriptive.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace accuracy {

namespace {

// Streams recompute intervals for the same (n, confidence) on every
// tuple; the t/z/chi-square percentiles only depend on that pair, so they
// are memoized here. Keyed by n in the low bits and the confidence bits
// above; collisions are impossible for distinct inputs because the key
// embeds both exactly.
struct PercentileKey {
  size_t n;
  double confidence;
  bool operator==(const PercentileKey& other) const {
    return n == other.n && confidence == other.confidence;
  }
};

struct PercentileKeyHash {
  size_t operator()(const PercentileKey& k) const {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(k.confidence));
    __builtin_memcpy(&bits, &k.confidence, sizeof(bits));
    return std::hash<uint64_t>()(bits * 0x9E3779B97F4A7C15ULL ^ k.n);
  }
};

// Cached multiplier of the Lemma 2 mean interval: t_{(1-c)/2, n-1} for
// n < 30, z_{(1-c)/2} otherwise.
double CachedMeanMultiplier(size_t n, double confidence) {
  thread_local std::unordered_map<PercentileKey, double, PercentileKeyHash>
      cache;
  const PercentileKey key{n, confidence};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const double q = (1.0 - confidence) / 2.0;
  const double value =
      n < kSmallSampleThreshold
          ? stats::StudentTUpperPercentile(q, static_cast<double>(n) - 1.0)
          : stats::NormalUpperPercentile(q);
  cache.emplace(key, value);
  return value;
}

// Cached chi-square divisors of the Lemma 2 variance interval.
struct ChiPair {
  double chi_hi;
  double chi_lo;
};

ChiPair CachedChiPair(size_t n, double confidence) {
  thread_local std::unordered_map<PercentileKey, ChiPair,
                                  PercentileKeyHash>
      cache;
  const PercentileKey key{n, confidence};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const double dof = static_cast<double>(n) - 1.0;
  const ChiPair value{
      stats::ChiSquareUpperPercentile((1.0 - confidence) / 2.0, dof),
      stats::ChiSquareUpperPercentile((1.0 + confidence) / 2.0, dof)};
  cache.emplace(key, value);
  return value;
}

Status ValidateMeanVarianceArgs(double sample_stddev, size_t n,
                                double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  if (n < 2) {
    return Status::InsufficientData(
        "mean/variance intervals require sample size >= 2");
  }
  if (!(sample_stddev >= 0.0) || !std::isfinite(sample_stddev)) {
    return Status::InvalidArgument(
        "sample standard deviation must be finite and >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<ConfidenceInterval> MeanInterval(double sample_mean,
                                        double sample_stddev, size_t n,
                                        double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateMeanVarianceArgs(sample_stddev, n, confidence));
  const double nn = static_cast<double>(n);
  const double multiplier = CachedMeanMultiplier(n, confidence);
  const double half = multiplier * sample_stddev / std::sqrt(nn);
  ConfidenceInterval ci;
  ci.lo = sample_mean - half;
  ci.hi = sample_mean + half;
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> VarianceInterval(double sample_stddev, size_t n,
                                            double confidence) {
  AUSDB_RETURN_NOT_OK(ValidateMeanVarianceArgs(sample_stddev, n, confidence));
  const double dof = static_cast<double>(n) - 1.0;
  const double s2 = Sq(sample_stddev);
  const auto [chi_hi, chi_lo] = CachedChiPair(n, confidence);
  ConfidenceInterval ci;
  // chi_hi > chi_lo, so dividing by it gives the lower endpoint.
  ci.lo = dof * s2 / chi_hi;
  ci.hi = chi_lo > 0.0 ? dof * s2 / chi_lo
                       : std::numeric_limits<double>::infinity();
  ci.confidence = confidence;
  return ci;
}

Result<ConfidenceInterval> MeanIntervalFromSample(
    std::span<const double> sample, double confidence) {
  const auto summary = stats::Summarize(sample);
  return MeanInterval(summary.mean, summary.SampleStdDev(), summary.count,
                      confidence);
}

Result<ConfidenceInterval> VarianceIntervalFromSample(
    std::span<const double> sample, double confidence) {
  const auto summary = stats::Summarize(sample);
  return VarianceInterval(summary.SampleStdDev(), summary.count,
                          confidence);
}

}  // namespace accuracy
}  // namespace ausdb
