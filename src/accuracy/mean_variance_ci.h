#ifndef AUSDB_ACCURACY_MEAN_VARIANCE_CI_H_
#define AUSDB_ACCURACY_MEAN_VARIANCE_CI_H_

#include <cstddef>
#include <span>

#include "src/accuracy/confidence_interval.h"
#include "src/common/result.h"

namespace ausdb {
namespace accuracy {

/// Sample size below which Lemma 2 uses Student's t instead of z.
inline constexpr size_t kSmallSampleThreshold = 30;

/// \brief Lemma 2 confidence interval for the mean:
///   ybar ± t_{(1-c)/2, n-1} * s/sqrt(n)   for n < 30,
///   ybar ± z_{(1-c)/2}      * s/sqrt(n)   for n >= 30.
///
/// `sample_mean` and `sample_stddev` are the statistics ybar and s of the
/// size-n sample. Requires n >= 2 (s needs n-1 > 0 degrees of freedom).
Result<ConfidenceInterval> MeanInterval(double sample_mean,
                                        double sample_stddev, size_t n,
                                        double confidence);

/// \brief Lemma 2 confidence interval for the variance:
///   [ (n-1) s^2 / chi2_{(1-c)/2},  (n-1) s^2 / chi2_{(1+c)/2} ]
/// with chi-square upper percentiles at n-1 degrees of freedom.
/// Requires n >= 2.
Result<ConfidenceInterval> VarianceInterval(double sample_stddev, size_t n,
                                            double confidence);

/// MeanInterval computed from a raw sample.
Result<ConfidenceInterval> MeanIntervalFromSample(
    std::span<const double> sample, double confidence);

/// VarianceInterval computed from a raw sample.
Result<ConfidenceInterval> VarianceIntervalFromSample(
    std::span<const double> sample, double confidence);

}  // namespace accuracy
}  // namespace ausdb

#endif  // AUSDB_ACCURACY_MEAN_VARIANCE_CI_H_
