#ifndef AUSDB_COMMON_BOUNDED_QUEUE_H_
#define AUSDB_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace ausdb {

/// \brief Bounded blocking FIFO connecting a producer thread to a
/// consumer thread (the prefetch ring buffer of
/// stream::AsyncPrefetchSource).
///
/// The queue is deliberately a mutex-and-condvar ring rather than a
/// lock-free one: the elements it carries (whole tuples) cost orders of
/// magnitude more to produce than a lock handoff, and the simple
/// implementation is easy to prove TSan-clean. Capacity is the
/// backpressure bound — Push blocks while the queue is full, which is
/// what stops a fast producer from buffering an unbounded prefix of the
/// stream.
///
/// Lifecycle:
///  - Close(): producer side announces end of stream. Pop drains the
///    remaining items, then returns kCancelled ("closed and drained").
///  - Cancel(): consumer side aborts the transfer. Both blocked Push and
///    blocked Pop wake immediately with kCancelled, and further calls
///    fail fast — this is how a destructor unblocks a producer stuck on
///    a full queue.
///
/// FIFO order is unconditional, which is what makes a prefetching
/// wrapper order-deterministic: the consumer observes exactly the
/// producer's outcome sequence, independent of timing.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// Mirrors queue observability into registry-owned metrics: `depth` is
  /// set to the current size after every push/pop, the wait counters are
  /// incremented alongside push_waits_/pop_waits_, and `try_rejections`
  /// counts TryPush calls refused with kBackpressure (the shed signal
  /// non-blocking producers act on). Any pointer may be null. All
  /// updates happen under the queue mutex — strictly write-only, so
  /// binding cannot change queue behaviour. Metrics must outlive the
  /// queue.
  void BindMetrics(obs::Gauge* depth, obs::Counter* push_waits,
                   obs::Counter* pop_waits,
                   obs::Counter* try_rejections = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    m_depth_ = depth;
    m_push_waits_ = push_waits;
    m_pop_waits_ = pop_waits;
    m_try_rejections_ = try_rejections;
    if (m_depth_) m_depth_->Set(static_cast<int64_t>(items_.size()));
  }

  /// Enqueues `item`, blocking while the queue is full. Returns
  /// kCancelled if the queue was cancelled (or becomes cancelled while
  /// blocked), kInvalidArgument after Close().
  Status Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
      return Status::InvalidArgument("BoundedQueue: Push after Close");
    }
    if (items_.size() >= capacity_ && !cancelled_) {
      ++push_waits_;
      if (m_push_waits_) m_push_waits_->Increment();
      not_full_.wait(lock, [&] {
        return items_.size() < capacity_ || cancelled_;
      });
    }
    if (cancelled_) return Status::Cancelled("BoundedQueue: cancelled");
    items_.push_back(std::move(item));
    if (m_depth_) m_depth_->Set(static_cast<int64_t>(items_.size()));
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Non-blocking Push: kBackpressure when full instead of waiting.
  Status TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_) return Status::Cancelled("BoundedQueue: cancelled");
    if (closed_) {
      return Status::InvalidArgument("BoundedQueue: Push after Close");
    }
    if (items_.size() >= capacity_) {
      ++try_push_rejections_;
      if (m_try_rejections_) m_try_rejections_->Increment();
      return Status::Backpressure("BoundedQueue: full");
    }
    items_.push_back(std::move(item));
    if (m_depth_) m_depth_->Set(static_cast<int64_t>(items_.size()));
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Dequeues the oldest item into `*out`, blocking while the queue is
  /// empty. Returns kCancelled when the queue was cancelled, or when it
  /// was closed and every item has been drained. (An out-parameter
  /// rather than Result<T>, so T may itself be a Result.)
  Status Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_ && !cancelled_) {
      ++pop_waits_;
      if (m_pop_waits_) m_pop_waits_->Increment();
      not_empty_.wait(lock, [&] {
        return !items_.empty() || closed_ || cancelled_;
      });
    }
    if (cancelled_) return Status::Cancelled("BoundedQueue: cancelled");
    if (items_.empty()) {
      // closed_ must hold here: the wait only returns on item/close/
      // cancel.
      return Status::Cancelled("BoundedQueue: closed and drained");
    }
    *out = std::move(items_.front());
    items_.pop_front();
    if (m_depth_) m_depth_->Set(static_cast<int64_t>(items_.size()));
    not_full_.notify_one();
    return Status::OK();
  }

  /// Producer side: no more items will be pushed. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
  }

  /// Consumer side: abandon the transfer and wake both ends. Idempotent.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  /// Times a Push blocked on a full queue (producer was faster than the
  /// consumer — the backpressure path).
  size_t push_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_waits_;
  }

  /// Times a Pop blocked on an empty queue (consumer was faster — the
  /// prefetch did not hide the producer's latency).
  size_t pop_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pop_waits_;
  }

  /// Times TryPush returned kBackpressure on a full queue (the
  /// non-blocking shed path).
  size_t try_push_rejections() const {
    std::lock_guard<std::mutex> lock(mu_);
    return try_push_rejections_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  bool cancelled_ = false;
  size_t push_waits_ = 0;
  size_t pop_waits_ = 0;
  size_t try_push_rejections_ = 0;
  obs::Gauge* m_depth_ = nullptr;
  obs::Counter* m_push_waits_ = nullptr;
  obs::Counter* m_pop_waits_ = nullptr;
  obs::Counter* m_try_rejections_ = nullptr;
};

}  // namespace ausdb

#endif  // AUSDB_COMMON_BOUNDED_QUEUE_H_
