#include "src/common/math_util.h"

#include <algorithm>

namespace ausdb {

bool AlmostEqual(double a, double b, double rel_tol, double abs_tol) {
  if (a == b) return true;
  const double diff = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  return diff <= abs_tol + rel_tol * scale;
}

double StableSum(const std::vector<double>& values) {
  KahanSum sum;
  for (double v : values) sum.Add(v);
  return sum.Get();
}

}  // namespace ausdb
