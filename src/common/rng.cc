#include "src/common/rng.h"

#include <cmath>

namespace ausdb {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) { Seed(seed); }

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: draws a uniform point in the unit disc and
  // transforms it into two independent standard normals.
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace ausdb
