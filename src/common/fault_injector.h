#ifndef AUSDB_COMMON_FAULT_INJECTOR_H_
#define AUSDB_COMMON_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ausdb {

/// When FaultInjector::Tick() injects a failure.
enum class FaultMode {
  /// Never inject (the fault-free control in benchmarks).
  kNone,
  /// Fail every k-th call (calls 1-based: k, 2k, 3k, ...).
  kEveryKth,
  /// Fail each call independently with probability p, drawn from the
  /// injector's seeded Rng — deterministic for a fixed seed.
  kProbability,
  /// Fail every call after the first n calls succeeded.
  kAfterN,
};

/// Configuration of a FaultInjector.
struct FaultSpec {
  FaultMode mode = FaultMode::kNone;

  /// kEveryKth: the k. Must be >= 1.
  size_t every_k = 10;

  /// kProbability: per-call failure probability in [0, 1].
  double probability = 0.01;

  /// kAfterN: number of initial calls that succeed.
  size_t after_n = 0;

  /// Status injected on failure. The default is transient
  /// (kUnavailable) so supervised pipelines retry it; set a fatal code
  /// to exercise fail-fast paths.
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";

  /// Stop injecting after this many failures (0 = unlimited). With
  /// kAfterN this turns a permanent outage into a finite glitch, which
  /// is what retry-until-success tests need.
  size_t max_failures = 0;
};

/// \brief Seeded, deterministic failure source for tests and benchmarks.
///
/// Call Tick() wherever the real system could fail (inside a tuple
/// generator, before an I/O call): it returns OK or the configured
/// failure Status per the FaultSpec schedule. All randomness comes from
/// the fixed-seed Rng, so a failing run replays exactly.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec, uint64_t seed = 42);

  /// Advances the schedule one call and returns OK or the injected
  /// failure.
  Status Tick();

  /// Total Tick() calls so far.
  size_t calls() const { return calls_; }

  /// Number of those that failed.
  size_t injected() const { return injected_; }

  /// Resets call/failure counters and re-seeds the Rng, replaying the
  /// schedule from the start.
  void Reset();

 private:
  FaultSpec spec_;
  uint64_t seed_;
  Rng rng_;
  size_t calls_ = 0;
  size_t injected_ = 0;
};

}  // namespace ausdb

#endif  // AUSDB_COMMON_FAULT_INJECTOR_H_
