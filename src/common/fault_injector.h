#ifndef AUSDB_COMMON_FAULT_INJECTOR_H_
#define AUSDB_COMMON_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ausdb {

/// When FaultInjector::Tick() injects a failure.
enum class FaultMode {
  /// Never inject (the fault-free control in benchmarks).
  kNone,
  /// Fail every k-th call (calls 1-based: k, 2k, 3k, ...).
  kEveryKth,
  /// Fail each call independently with probability p, drawn from the
  /// injector's seeded Rng — deterministic for a fixed seed.
  kProbability,
  /// Fail every call after the first n calls succeeded.
  kAfterN,
};

/// Configuration of a FaultInjector.
struct FaultSpec {
  FaultMode mode = FaultMode::kNone;

  /// kEveryKth: the k. Must be >= 1.
  size_t every_k = 10;

  /// kProbability: per-call failure probability in [0, 1].
  double probability = 0.01;

  /// kAfterN: number of initial calls that succeed.
  size_t after_n = 0;

  /// Status injected on failure. The default is transient
  /// (kUnavailable) so supervised pipelines retry it; set a fatal code
  /// to exercise fail-fast paths.
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";

  /// Stop injecting after this many failures (0 = unlimited). With
  /// kAfterN this turns a permanent outage into a finite glitch, which
  /// is what retry-until-success tests need.
  size_t max_failures = 0;
};

/// \brief Seeded, deterministic failure source for tests and benchmarks.
///
/// Call Tick() wherever the real system could fail (inside a tuple
/// generator, before an I/O call): it returns OK or the configured
/// failure Status per the FaultSpec schedule. All randomness comes from
/// the fixed-seed Rng, so a failing run replays exactly.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec, uint64_t seed = 42);

  /// Advances the schedule one call and returns OK or the injected
  /// failure.
  Status Tick();

  /// Total Tick() calls so far.
  size_t calls() const { return calls_; }

  /// Number of those that failed.
  size_t injected() const { return injected_; }

  /// Resets call/failure counters and re-seeds the Rng, replaying the
  /// schedule from the start.
  void Reset();

 private:
  FaultSpec spec_;
  uint64_t seed_;
  Rng rng_;
  size_t calls_ = 0;
  size_t injected_ = 0;
};

/// \brief Deterministic process-crash simulator for recovery testing.
///
/// Code that participates in crash-recovery testing marks each place a
/// real process could die — between pulling tuples, halfway through a
/// checkpoint write, after fsync but before the atomic rename — by
/// calling CrashIf("site-label"). Every call advances a counter; the
/// injector "crashes" exactly on the `crash_at`-th visit (1-based) by
/// returning a non-OK Status the harness treats as process death:
/// everything in memory is abandoned and recovery starts from disk.
///
/// Sweeping `crash_at` over [1, total sites] — the total is discovered by
/// a run constructed with kNever, which visits every site without firing
/// — proves recovery is correct no matter where the process dies. The
/// schedule is a pure function of `crash_at`, so a failing crash point
/// replays exactly.
class CrashPointInjector {
 public:
  /// Sentinel: never crash, just count sites.
  static constexpr size_t kNever = static_cast<size_t>(-1);

  explicit CrashPointInjector(size_t crash_at = kNever)
      : crash_at_(crash_at) {}

  /// Marks one crash site. Returns OK, or the simulated-crash Status on
  /// the `crash_at`-th call. Fires at most once; after the crash fired,
  /// later sites return OK so recovery code can share the injector.
  Status CrashIf(std::string_view site);

  /// True on the call where CrashIf would fire (same counting and firing
  /// bookkeeping), without building a Status — for sites that need side
  /// effects (e.g. a torn write) before reporting the crash.
  bool AtCrashPoint(std::string_view site);

  /// Crash sites visited so far (the sweep bound when constructed with
  /// kNever).
  size_t sites_visited() const { return visited_; }

  /// True once the injected crash fired.
  bool fired() const { return fired_; }

  /// Label of the site that fired; empty until then.
  const std::string& fired_site() const { return fired_site_; }

  /// The Status a fired site returns — kUnavailable so it is clearly
  /// distinguishable from data errors, with the site in the message.
  static Status CrashStatus(std::string_view site);

 private:
  size_t crash_at_;
  size_t visited_ = 0;
  bool fired_ = false;
  std::string fired_site_;
};

}  // namespace ausdb

#endif  // AUSDB_COMMON_FAULT_INJECTOR_H_
