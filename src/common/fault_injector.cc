#include "src/common/fault_injector.h"

namespace ausdb {

FaultInjector::FaultInjector(FaultSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), rng_(seed) {}

Status FaultInjector::Tick() {
  ++calls_;
  if (spec_.max_failures != 0 && injected_ >= spec_.max_failures) {
    return Status::OK();
  }
  bool fail = false;
  switch (spec_.mode) {
    case FaultMode::kNone:
      break;
    case FaultMode::kEveryKth:
      fail = spec_.every_k >= 1 && calls_ % spec_.every_k == 0;
      break;
    case FaultMode::kProbability:
      fail = rng_.NextDouble() < spec_.probability;
      break;
    case FaultMode::kAfterN:
      fail = calls_ > spec_.after_n;
      break;
  }
  if (!fail) return Status::OK();
  ++injected_;
  return Status(spec_.code,
                spec_.message + " (call " + std::to_string(calls_) + ")");
}

void FaultInjector::Reset() {
  calls_ = 0;
  injected_ = 0;
  rng_.Seed(seed_);
}

bool CrashPointInjector::AtCrashPoint(std::string_view site) {
  ++visited_;
  if (fired_ || visited_ != crash_at_) return false;
  fired_ = true;
  fired_site_ = std::string(site);
  return true;
}

Status CrashPointInjector::CrashStatus(std::string_view site) {
  return Status::Unavailable("simulated crash at '" + std::string(site) +
                             "'");
}

Status CrashPointInjector::CrashIf(std::string_view site) {
  return AtCrashPoint(site) ? CrashStatus(site) : Status::OK();
}

}  // namespace ausdb
