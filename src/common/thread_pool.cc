#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ausdb {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, size_t num_chunks,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  AUSDB_CHECK(num_chunks > 0) << "ParallelFor needs at least one chunk";
  if (n == 0) return;
  num_chunks = std::min(num_chunks, n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    AUSDB_CHECK(in_flight_ == 0)
        << "ThreadPool::ParallelFor is not reentrant";
    in_flight_ = num_chunks;
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = n * c / num_chunks;
      const size_t end = n * (c + 1) / num_chunks;
      queue_.push_back([fn, c, begin, end] { fn(c, begin, end); });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t DeterministicChunkCount(size_t n) {
  // Enough chunks to keep any realistic worker count busy with decent
  // load balance, few enough that per-chunk state (e.g. a private output
  // histogram) stays cheap. Purely a function of n.
  if (n == 0) return 1;
  return std::clamp<size_t>(n / 16, 1, 64);
}

void RunChunked(ThreadPool* pool, size_t n, size_t num_chunks,
                const std::function<void(size_t, size_t, size_t)>& fn) {
  AUSDB_CHECK(num_chunks > 0) << "RunChunked needs at least one chunk";
  if (n == 0) return;
  if (pool != nullptr) {
    pool->ParallelFor(n, num_chunks, fn);
    return;
  }
  num_chunks = std::min(num_chunks, n);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = n * c / num_chunks;
    const size_t end = n * (c + 1) / num_chunks;
    fn(c, begin, end);
  }
}

}  // namespace ausdb
