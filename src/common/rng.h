#ifndef AUSDB_COMMON_RNG_H_
#define AUSDB_COMMON_RNG_H_

#include <cstdint>

namespace ausdb {

/// \brief Deterministic pseudo-random number generator (xoshiro256++).
///
/// All randomized components of AUSDB (bootstrap resampling, Monte Carlo
/// expression evaluation, workload generators) draw from an explicitly
/// passed Rng so that experiments are reproducible from a seed. The
/// generator is Blackman & Vigna's xoshiro256++ with a SplitMix64 seeder;
/// it is not cryptographically secure and is not meant to be.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit seed (including 0) is valid; the
  /// internal state is expanded with SplitMix64 so similar seeds do not
  /// produce correlated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method, cached pair).
  double NextGaussian();

  /// Re-seeds the generator, discarding all state.
  void Seed(uint64_t seed);

  /// Splits off an independently seeded child generator. Useful for giving
  /// each parallel task its own stream.
  Rng Split();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ausdb

#endif  // AUSDB_COMMON_RNG_H_
