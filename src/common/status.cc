#include "src/common/status.h"

namespace ausdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kInsufficientData:
      return "Insufficient data";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kBackpressure:
      return "Backpressure";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ausdb
