#ifndef AUSDB_COMMON_THREAD_POOL_H_
#define AUSDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ausdb {

/// \brief Fixed-size worker pool for deterministic data parallelism.
///
/// AUSDB's accuracy guarantees only survive parallelization if a parallel
/// run is bit-identical to a serial one, so the pool is used exclusively
/// through *static chunking*: work is split into a fixed number of
/// contiguous chunks whose boundaries depend only on the problem size
/// (never on the thread count), each chunk accumulates into private
/// state, and the caller merges chunk results in chunk-index order.
/// Under that discipline the floating-point operation tree is invariant
/// across thread counts, including the no-pool serial fallback.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// \brief Runs `fn(chunk_index, begin, end)` for every chunk of [0, n)
  /// split into `num_chunks` contiguous ranges of near-equal size, and
  /// blocks until all chunks have finished. Chunk boundaries are a pure
  /// function of (n, num_chunks). `fn` must not touch shared mutable
  /// state except through per-chunk slots.
  void ParallelFor(size_t n, size_t num_chunks,
                   const std::function<void(size_t chunk_index,
                                            size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Deterministic chunk count for a problem of size n: a pure
/// function of n (never of the machine), so the merge tree — and hence
/// the floating-point result — is reproducible everywhere.
size_t DeterministicChunkCount(size_t n);

/// \brief Runs the statically chunked loop on `pool`, or inline in chunk
/// order when `pool` is null (the serial engine). Both paths execute the
/// identical chunk decomposition, which is what makes the serial and
/// parallel results bit-identical.
void RunChunked(ThreadPool* pool, size_t n, size_t num_chunks,
                const std::function<void(size_t chunk_index, size_t begin,
                                         size_t end)>& fn);

}  // namespace ausdb

#endif  // AUSDB_COMMON_THREAD_POOL_H_
