#include "src/common/retry.h"

#include <algorithm>

namespace ausdb {

FailureClass ClassifyStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
    // A full bounded buffer clears once the consumer drains it.
    case StatusCode::kBackpressure:
    // An admission-control rejection clears once observed pressure
    // relaxes below the governor's re-admission threshold.
    case StatusCode::kOverloaded:
      return FailureClass::kTransient;
    // kCancelled is deliberately fatal: the consumer shut the pipeline
    // down, so retrying would race against teardown. kResourceExhausted
    // is fatal too: a budget does not free itself, some operator must
    // release state first.
    default:
      return FailureClass::kFatal;
  }
}

double RetryPolicy::BackoffFor(size_t retry, Rng& rng) const {
  double base = initial_backoff_seconds;
  for (size_t i = 0; i < retry; ++i) {
    base *= backoff_multiplier;
    if (base >= max_backoff_seconds) break;
  }
  base = std::min(base, max_backoff_seconds);
  if (jitter_fraction <= 0.0) return base;
  const double lo = base * (1.0 - jitter_fraction);
  const double hi = base * (1.0 + jitter_fraction);
  return rng.NextDouble(lo, hi);
}

bool RetryPolicy::DeadlineExhausted(double elapsed_seconds) const {
  return max_elapsed_seconds > 0.0 &&
         elapsed_seconds >= max_elapsed_seconds;
}

bool RetryPolicy::ShouldRetry(const Status& status, size_t attempts_so_far,
                              double elapsed_seconds) const {
  if (status.ok()) return false;
  if (attempts_so_far >= max_attempts) return false;
  if (DeadlineExhausted(elapsed_seconds)) return false;
  return ClassifyStatus(status) == FailureClass::kTransient;
}

bool RetryPolicy::ShouldRetry(const Status& status,
                              size_t attempts_so_far) const {
  return ShouldRetry(status, attempts_so_far, 0.0);
}

}  // namespace ausdb
