#ifndef AUSDB_COMMON_STATUS_H_
#define AUSDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ausdb {

/// \brief Category of an operation outcome.
///
/// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
/// (or a Result<T>, see result.h) rather than throwing. StatusCode::kOk is
/// the success value; everything else describes the failure class.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kParseError = 7,
  kTypeError = 8,
  kInsufficientData = 9,
  /// A dependency (sensor link, socket, remote feed) is temporarily
  /// unreachable; the operation may succeed if retried. The retry layer
  /// (src/common/retry.h) treats this code as transient by default.
  kUnavailable = 10,
  /// Durable data failed an integrity check: bad magic, truncated file,
  /// checksum mismatch, or a length/count field inconsistent with the
  /// bytes actually present. Unlike kParseError (malformed *input* data),
  /// corruption means bytes this system wrote back disagree with what it
  /// reads now; retrying the same bytes cannot help, but an older
  /// checkpoint generation might (see serde::CheckpointStorage).
  kCorruption = 11,
  /// A retry sequence exhausted its wall-clock budget
  /// (RetryPolicy::max_elapsed_seconds) before exhausting its attempt
  /// cap. The message carries the last underlying error.
  kDeadlineExceeded = 12,
  /// The operation was abandoned because its consumer shut down: a
  /// bounded queue was cancelled, a prefetching source was Close()d
  /// while the producer was still running. Unlike kUnavailable this is
  /// not retryable — the shutdown was deliberate and the other side is
  /// gone.
  kCancelled = 13,
  /// A bounded resource (ring buffer, in-flight window) is full and the
  /// caller chose not to block. Transient by construction: draining the
  /// consumer frees capacity, so the retry layer treats it like
  /// kUnavailable.
  kBackpressure = 14,
  /// A per-plan resource budget (memory, allocation quota) would be
  /// exceeded by admitting more state. Unlike kBackpressure this is not
  /// a momentary full ring but an accounting limit the operator refuses
  /// to cross — the loud alternative to an OOM kill. Fatal to the retry
  /// layer: replaying the same admission against the same budget cannot
  /// succeed until an operator explicitly releases state.
  kResourceExhausted = 15,
  /// The overload governor refused to admit new work: the engine is past
  /// its accuracy floor, so shedding more precision would produce
  /// intervals it is not willing to vouch for, and admission control is
  /// the remaining relief valve. Transient by construction — the
  /// governor re-admits as soon as observed pressure relaxes — so the
  /// retry layer backs off and re-offers, exactly like kBackpressure.
  kOverloaded = 16,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional message.
///
/// Status is cheap to copy in the success case (no allocation). Use the
/// static factories (Status::OK(), Status::InvalidArgument(...)) to build
/// one, and ok() / code() / message() to inspect it.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \brief The success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status InsufficientData(std::string msg) {
    return Status(StatusCode::kInsufficientData, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Backpressure(std::string msg) {
    return Status(StatusCode::kBackpressure, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The failure message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsInsufficientData() const {
    return code_ == StatusCode::kInsufficientData;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsBackpressure() const {
    return code_ == StatusCode::kBackpressure;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Propagates a non-OK Status to the caller.
///
/// Usage: `AUSDB_RETURN_NOT_OK(DoThing());` inside a function returning
/// Status or Result<T>.
#define AUSDB_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::ausdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace ausdb

#endif  // AUSDB_COMMON_STATUS_H_
