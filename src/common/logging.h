#ifndef AUSDB_COMMON_LOGGING_H_
#define AUSDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ausdb {
namespace internal {

/// \brief Terminates the process after streaming a fatal diagnostic.
///
/// Used by the AUSDB_CHECK family; the destructor aborts, so a
/// FatalLogMessage must never be constructed on a path that should survive.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[FATAL] " << file << ":" << line << ": ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ausdb

/// \brief Aborts with a diagnostic if `condition` is false.
///
/// These are invariant checks (programming errors), not data validation;
/// recoverable conditions must go through Status/Result instead.
#define AUSDB_CHECK(condition)                                     \
  if (!(condition))                                                \
  ::ausdb::internal::FatalLogMessage(__FILE__, __LINE__).stream()  \
      << "Check failed: " #condition " "

#define AUSDB_CHECK_OK(expr)                                       \
  do {                                                             \
    ::ausdb::Status _st = (expr);                                  \
    AUSDB_CHECK(_st.ok()) << _st.ToString();                       \
  } while (false)

#define AUSDB_CHECK_EQ(a, b) AUSDB_CHECK((a) == (b))
#define AUSDB_CHECK_NE(a, b) AUSDB_CHECK((a) != (b))
#define AUSDB_CHECK_LT(a, b) AUSDB_CHECK((a) < (b))
#define AUSDB_CHECK_LE(a, b) AUSDB_CHECK((a) <= (b))
#define AUSDB_CHECK_GT(a, b) AUSDB_CHECK((a) > (b))
#define AUSDB_CHECK_GE(a, b) AUSDB_CHECK((a) >= (b))

/// Marks debug-only checks; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define AUSDB_DCHECK(condition) \
  if (false) AUSDB_CHECK(condition)
#else
#define AUSDB_DCHECK(condition) AUSDB_CHECK(condition)
#endif

#endif  // AUSDB_COMMON_LOGGING_H_
