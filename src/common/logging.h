#ifndef AUSDB_COMMON_LOGGING_H_
#define AUSDB_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace ausdb {

/// \brief Leveled runtime logging.
///
/// `AUSDB_LOG(INFO) << "replayed " << n << " tuples";` — the stream
/// arguments are evaluated lazily: when the level is disabled the whole
/// statement compiles to one relaxed atomic load and nothing to the
/// right of the macro runs. Messages go to a pluggable sink (default:
/// one stderr line), so tests can capture and embedded callers can
/// redirect. Fatal diagnostics stay with AUSDB_CHECK below — AUSDB_LOG
/// never terminates the process.
namespace logging {

enum class Level : int {
  kInfo = 0,
  kWarn = 1,
  kError = 2,
  /// Sentinel above every real level: disables all logging.
  kOff = 3,
};

/// Receives one fully formatted message. Must be thread-safe if the
/// program logs from multiple threads.
using Sink = std::function<void(Level, const char* file, int line,
                                const std::string& message)>;

/// Minimum level that is emitted (default kWarn: INFO is opt-in).
void SetMinLevel(Level level);
Level MinLevel();

/// True when `level` would currently be emitted; the macro's guard.
bool IsEnabled(Level level);

/// Replaces the sink; a null sink restores the stderr default.
void SetSink(Sink sink);

/// "INFO" / "WARN" / "ERROR".
const char* LevelName(Level level);

namespace internal {

/// Accumulates one message and hands it to the sink on destruction.
class LogMessage {
 public:
  LogMessage(Level level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  Level level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the ostream produced by a live LogMessage so the enabled
/// and disabled branches of AUSDB_LOG have the same (void) type.
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Spelled-out severities for the AUSDB_LOG token paste.
inline constexpr Level kLogINFO = Level::kInfo;
inline constexpr Level kLogWARN = Level::kWarn;
inline constexpr Level kLogERROR = Level::kError;

}  // namespace internal
}  // namespace logging

namespace internal {

/// \brief Terminates the process after streaming a fatal diagnostic.
///
/// Used by the AUSDB_CHECK family; the destructor aborts, so a
/// FatalLogMessage must never be constructed on a path that should survive.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[FATAL] " << file << ":" << line << ": ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ausdb

/// \brief Leveled, lazily evaluated log statement:
/// `AUSDB_LOG(WARN) << "quarantined tuple " << seq;`
///
/// The ternary keeps this a single expression (safe in unbraced if/else)
/// and short-circuits: with the level disabled, the streamed arguments
/// are never evaluated.
#define AUSDB_LOG(severity)                                              \
  !::ausdb::logging::IsEnabled(::ausdb::logging::internal::kLog##severity) \
      ? (void)0                                                          \
      : ::ausdb::logging::internal::Voidify() &                          \
            ::ausdb::logging::internal::LogMessage(                      \
                ::ausdb::logging::internal::kLog##severity, __FILE__,    \
                __LINE__)                                                \
                .stream()

/// \brief Aborts with a diagnostic if `condition` is false.
///
/// These are invariant checks (programming errors), not data validation;
/// recoverable conditions must go through Status/Result instead.
#define AUSDB_CHECK(condition)                                     \
  if (!(condition))                                                \
  ::ausdb::internal::FatalLogMessage(__FILE__, __LINE__).stream()  \
      << "Check failed: " #condition " "

#define AUSDB_CHECK_OK(expr)                                       \
  do {                                                             \
    ::ausdb::Status _st = (expr);                                  \
    AUSDB_CHECK(_st.ok()) << _st.ToString();                       \
  } while (false)

#define AUSDB_CHECK_EQ(a, b) AUSDB_CHECK((a) == (b))
#define AUSDB_CHECK_NE(a, b) AUSDB_CHECK((a) != (b))
#define AUSDB_CHECK_LT(a, b) AUSDB_CHECK((a) < (b))
#define AUSDB_CHECK_LE(a, b) AUSDB_CHECK((a) <= (b))
#define AUSDB_CHECK_GT(a, b) AUSDB_CHECK((a) > (b))
#define AUSDB_CHECK_GE(a, b) AUSDB_CHECK((a) >= (b))

/// Marks debug-only checks; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define AUSDB_DCHECK(condition) \
  if (false) AUSDB_CHECK(condition)
#else
#define AUSDB_DCHECK(condition) AUSDB_CHECK(condition)
#endif

#endif  // AUSDB_COMMON_LOGGING_H_
