#include "src/common/crc32c.h"

#include <array>

namespace ausdb {

namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78u;

struct Crc32cTables {
  // tables[0] is the classic byte-at-a-time table; tables[k] gives the
  // contribution of a byte that still has k more bytes of zero padding
  // behind it, which is what lets the kernel fold eight bytes at once.
  std::array<std::array<uint32_t, 256>, 8> t;

  constexpr Crc32cTables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

constexpr Crc32cTables kTables{};

inline uint32_t Load32(const unsigned char* p) {
  // Byte-wise assembly keeps the kernel endian-independent; compilers
  // fold this into a single load on little-endian targets.
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const auto& t = kTables.t;
  crc = ~crc;
  // Align to 8 bytes so the sliced loop reads naturally aligned words.
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    const uint32_t lo = crc ^ Load32(p);
    const uint32_t hi = Load32(p + 4);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
          t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(kCrc32cInit, data, size);
}

}  // namespace ausdb
