#ifndef AUSDB_COMMON_RETRY_H_
#define AUSDB_COMMON_RETRY_H_

#include <cstddef>
#include <cstdint>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ausdb {

/// \brief How a failure Status should be handled by a supervisor.
enum class FailureClass {
  /// Worth retrying: the operation may succeed on a later attempt
  /// (dropped sensor link, stalled feed).
  kTransient,
  /// Retrying cannot help: a bug, a type mismatch, bad configuration.
  kFatal,
};

/// \brief Default transient/fatal classification of a Status.
///
/// kUnavailable and kInternal are transient — they are what flaky
/// infrastructure raises (the seed failure-injection tests use
/// Status::Internal("sensor link dropped") for exactly this). Everything
/// else (invalid argument, type error, parse error, ...) describes the
/// request or the data, not the channel, and is fatal. OK statuses must
/// not be classified.
FailureClass ClassifyStatus(const Status& status);

/// \brief Retry schedule: bounded attempts with exponential backoff and
/// deterministic jitter.
///
/// Backoff is computed, not slept, by this class: BackoffFor() returns the
/// delay in seconds for a given attempt, with jitter drawn from an
/// explicitly passed Rng so that a fixed seed reproduces the exact
/// schedule. The caller (SupervisedScan, or any connector) decides how to
/// wait — tests pass a recording sleep function instead of blocking.
struct RetryPolicy {
  /// Total tries per operation, including the first. 1 disables retry.
  size_t max_attempts = 4;

  /// Delay before the first retry, in seconds.
  double initial_backoff_seconds = 0.010;

  /// Multiplier applied per further retry (2.0 = classic doubling).
  double backoff_multiplier = 2.0;

  /// Upper bound of the un-jittered delay, in seconds.
  double max_backoff_seconds = 1.0;

  /// Fraction of the delay randomized: the returned delay is uniform in
  /// [base * (1 - jitter_fraction), base * (1 + jitter_fraction)].
  /// 0 disables jitter.
  double jitter_fraction = 0.25;

  /// Total retry time budget in seconds across ALL attempts of one
  /// operation; 0 disables the deadline. Attempt counting bounds how
  /// *often* a flaky dependency is retried; this bounds how *long* —
  /// without it, a generous attempt budget with long max backoff can
  /// stall a pipeline for minutes on a dead feed. The elapsed time
  /// compared against it is the accumulated scheduled backoff, so the
  /// decision is deterministic and test-controlled rather than
  /// wall-clock-raced. Exhausting the deadline surfaces as
  /// kDeadlineExceeded (see SupervisedScan).
  double max_elapsed_seconds = 0.0;

  /// Delay in seconds before retry number `retry` (0-based: the delay
  /// after the first failure is BackoffFor(0, rng)). Deterministic given
  /// the rng state.
  double BackoffFor(size_t retry, Rng& rng) const;

  /// True if `status` should be retried under this policy given that
  /// `attempts_so_far` attempts (>= 1) have already failed and
  /// `elapsed_seconds` of backoff have already been scheduled.
  bool ShouldRetry(const Status& status, size_t attempts_so_far,
                   double elapsed_seconds) const;

  /// Attempt-count-only overload (no deadline pressure): equivalent to
  /// ShouldRetry(status, attempts_so_far, 0.0).
  bool ShouldRetry(const Status& status, size_t attempts_so_far) const;

  /// True when the deadline (not the attempt cap) is what forbids
  /// another retry — the signal that the failure should surface as
  /// kDeadlineExceeded rather than the underlying error.
  bool DeadlineExhausted(double elapsed_seconds) const;
};

}  // namespace ausdb

#endif  // AUSDB_COMMON_RETRY_H_
