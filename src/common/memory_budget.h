#ifndef AUSDB_COMMON_MEMORY_BUDGET_H_
#define AUSDB_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/obs/metrics.h"

namespace ausdb {

/// \brief Per-plan byte budget for operator-held state (reorder buffers,
/// prefetch rings, window accumulators).
///
/// The engine's buffering operators each bound their own element counts,
/// but element counts do not bound bytes — a tuple carrying a retained
/// bootstrap sample is three orders of magnitude bigger than a bare
/// double. A MemoryBudget turns "the process got OOM-killed" into the
/// loud, attributable Status the overload governor can act on:
/// TryReserve() fails with kResourceExhausted *before* the allocation
/// happens, naming the component that asked.
///
/// Accounting is cooperative and approximate (Tuple::ApproxBytes), which
/// is the right trade: the budget exists to catch runaway buffering an
/// order of magnitude before the kernel does, not to replace malloc.
///
/// Thread safety: reserve/release are lock-free CAS updates, so sharded
/// operators on pool workers can charge one plan-wide budget. The data
/// path only ever *writes* the budget; the single sanctioned reader is
/// the overload governor, which samples used()/limit() at its
/// deterministic decision epochs (see src/govern/signals.h).
class MemoryBudget {
 public:
  /// `limit_bytes` == 0 means unlimited (accounting only).
  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` against the budget, or fails with
  /// kResourceExhausted (naming `component`) when the reservation would
  /// cross the limit. Never partially reserves.
  Status TryReserve(size_t bytes, std::string_view component);

  /// Returns a reservation. Releasing more than was reserved clamps to
  /// zero (operators estimate, and a clamped release must not poison the
  /// budget forever).
  void Release(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }

  /// used / limit in [0, 1]; 0.0 when unlimited. The governor's memory
  /// pressure signal.
  double FillFraction() const;

  /// Times TryReserve refused a reservation.
  size_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

  /// Mirrors the budget into registry-owned metrics (any pointer may be
  /// null): `used`/`limit` gauges track bytes, `rejections` counts
  /// refused reservations. Write-only per the obs contract; the metrics
  /// must outlive the budget.
  void BindMetrics(obs::Gauge* used, obs::Gauge* limit,
                   obs::Counter* rejections);

  /// Convenience: registers the standard `ausdb_common_memory_budget_*`
  /// family labeled `{plan=label}` in `registry` and binds it.
  void RegisterMetrics(obs::MetricRegistry& registry,
                       const std::string& label);

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> rejections_{0};
  obs::Gauge* m_used_ = nullptr;
  obs::Gauge* m_limit_ = nullptr;
  obs::Counter* m_rejections_ = nullptr;
};

}  // namespace ausdb

#endif  // AUSDB_COMMON_MEMORY_BUDGET_H_
