#include "src/common/memory_budget.h"

namespace ausdb {

Status MemoryBudget::TryReserve(size_t bytes, std::string_view component) {
  size_t current = used_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t next = current + bytes;
    if (next < current /* overflow */ ||
        (limit_ != 0 && next > limit_)) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      if (m_rejections_ != nullptr) m_rejections_->Increment();
      return Status::ResourceExhausted(
          std::string(component) + ": memory budget exhausted (used " +
          std::to_string(current) + " + " + std::to_string(bytes) +
          " > limit " + std::to_string(limit_) + " bytes)");
    }
    if (used_.compare_exchange_weak(current, next,
                                    std::memory_order_relaxed)) {
      if (m_used_ != nullptr) m_used_->Set(static_cast<int64_t>(next));
      return Status::OK();
    }
  }
}

void MemoryBudget::Release(size_t bytes) {
  size_t current = used_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t next = current >= bytes ? current - bytes : 0;
    if (used_.compare_exchange_weak(current, next,
                                    std::memory_order_relaxed)) {
      if (m_used_ != nullptr) m_used_->Set(static_cast<int64_t>(next));
      return;
    }
  }
}

double MemoryBudget::FillFraction() const {
  if (limit_ == 0) return 0.0;
  return static_cast<double>(used()) / static_cast<double>(limit_);
}

void MemoryBudget::BindMetrics(obs::Gauge* used, obs::Gauge* limit,
                               obs::Counter* rejections) {
  m_used_ = used;
  m_limit_ = limit;
  m_rejections_ = rejections;
  if (m_used_ != nullptr) m_used_->Set(static_cast<int64_t>(this->used()));
  if (m_limit_ != nullptr) m_limit_->Set(static_cast<int64_t>(limit_));
}

void MemoryBudget::RegisterMetrics(obs::MetricRegistry& registry,
                                   const std::string& label) {
  const obs::Labels labels = {{"plan", label}};
  BindMetrics(
      registry.GetGauge("ausdb_common_memory_budget_used_bytes", labels,
                        "Bytes currently reserved against the plan's "
                        "memory budget"),
      registry.GetGauge("ausdb_common_memory_budget_limit_bytes", labels,
                        "Configured byte limit of the plan's memory "
                        "budget (0 = unlimited)"),
      registry.GetCounter(
          "ausdb_common_memory_budget_rejections_total", labels,
          "Reservations refused with kResourceExhausted"));
}

}  // namespace ausdb
