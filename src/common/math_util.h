#ifndef AUSDB_COMMON_MATH_UTIL_H_
#define AUSDB_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace ausdb {

/// x squared.
inline double Sq(double x) { return x * x; }

/// True if |a-b| <= abs_tol + rel_tol*max(|a|,|b|). The default tolerances
/// suit unit-scale statistical quantities.
bool AlmostEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

/// \brief Numerically stable summation (Kahan-Babuska / Neumaier).
///
/// Accumulates doubles with a running compensation term so that long,
/// mixed-magnitude streams (e.g. millions of window updates) do not drift.
class KahanSum {
 public:
  void Add(double x) {
    double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  void Subtract(double x) { Add(-x); }
  double Get() const { return sum_ + comp_; }
  void Reset() { sum_ = comp_ = 0.0; }

  /// The raw running sum and its compensation term, exposed so operator
  /// checkpoints can persist the accumulator's exact floating-point
  /// history and restore it bit-for-bit.
  double raw_sum() const { return sum_; }
  double compensation() const { return comp_; }
  void Restore(double sum, double comp) {
    sum_ = sum;
    comp_ = comp;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Kahan-compensated sum of a vector.
double StableSum(const std::vector<double>& values);

/// Linear interpolation between a and b at fraction t in [0,1].
inline double Lerp(double a, double b, double t) { return a + t * (b - a); }

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace ausdb

#endif  // AUSDB_COMMON_MATH_UTIL_H_
