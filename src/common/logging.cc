#include "src/common/logging.h"

#include <mutex>
#include <utility>

namespace ausdb {
namespace logging {

namespace {

/// The level gate is a relaxed atomic so the disabled-log fast path is
/// one load with no fence; the sink swap takes a mutex (rare).
std::atomic<int> g_min_level{static_cast<int>(Level::kWarn)};

std::mutex g_sink_mu;
Sink& GlobalSink() {
  static Sink sink;  // empty = stderr default
  return sink;
}

void DefaultSink(Level level, const char* file, int line,
                 const std::string& message) {
  std::ostringstream line_out;
  line_out << "[" << LevelName(level) << "] " << file << ":" << line
           << ": " << message << "\n";
  // One preformatted write keeps concurrent log lines unmangled.
  std::cerr << line_out.str();
}

}  // namespace

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level MinLevel() {
  return static_cast<Level>(g_min_level.load(std::memory_order_relaxed));
}

bool IsEnabled(Level level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

void SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  GlobalSink() = std::move(sink);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "UNKNOWN";
}

namespace internal {

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  std::lock_guard<std::mutex> lock(g_sink_mu);
  const Sink& sink = GlobalSink();
  if (sink) {
    sink(level_, file_, line_, message);
  } else {
    DefaultSink(level_, file_, line_, message);
  }
}

}  // namespace internal
}  // namespace logging
}  // namespace ausdb
