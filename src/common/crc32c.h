#ifndef AUSDB_COMMON_CRC32C_H_
#define AUSDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ausdb {

/// \brief CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected form
/// 0x82F63B78) over a byte range.
///
/// This is the checksum that guards durable checkpoint files: unlike the
/// IEEE CRC32, Castagnoli detects all 1- and 2-bit errors over the block
/// lengths checkpoints use, and it is what production storage engines
/// (RocksDB, LevelDB, ext4 metadata) standardize on. The kernel is
/// slice-by-8: eight 256-entry tables consume eight input bytes per
/// iteration, an order of magnitude faster than the byte-at-a-time loop
/// on checkpoint-sized payloads.
///
/// The value returned is the finalized (post-inverted) CRC, e.g.
/// Crc32c("123456789") == 0xE3069283 (the RFC 3720 check value).
uint32_t Crc32c(const void* data, size_t size);

inline uint32_t Crc32c(std::string_view bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

/// \brief Incremental form: extends a running CRC with more bytes.
///
/// `crc` is the finalized value of the previous range (start from
/// kCrc32cInit for an empty prefix); the return value equals the one-shot
/// Crc32c over the concatenation.
inline constexpr uint32_t kCrc32cInit = 0;
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace ausdb

#endif  // AUSDB_COMMON_CRC32C_H_
