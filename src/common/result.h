#ifndef AUSDB_COMMON_RESULT_H_
#define AUSDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace ausdb {

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Result<T> is implicitly constructible from both T and Status, so
/// functions can `return value;` on success and `return
/// Status::InvalidArgument(...)` on failure. Inspect with ok() / status(),
/// and extract with ValueOrDie() (asserts), operator* / operator->, or
/// MoveValueUnsafe().
template <typename T>
class Result {
 public:
  /// Constructs a failed Result. `status` must not be OK.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// Constructs a successful Result holding `value`.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// The held value. Undefined behaviour if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out without checking ok(); caller must have checked.
  T MoveValueUnsafe() { return std::move(*value_); }

  /// Returns the value if ok(), otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Assigns the value of a Result expression to `lhs`, or propagates
/// its failure Status to the caller.
///
/// Usage: `AUSDB_ASSIGN_OR_RETURN(auto x, ComputeX());`
#define AUSDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define AUSDB_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define AUSDB_ASSIGN_OR_RETURN_CONCAT(x, y) \
  AUSDB_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define AUSDB_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  AUSDB_ASSIGN_OR_RETURN_IMPL(                                              \
      AUSDB_ASSIGN_OR_RETURN_CONCAT(_ausdb_result_, __LINE__), lhs, rexpr)

}  // namespace ausdb

#endif  // AUSDB_COMMON_RESULT_H_
