#ifndef AUSDB_STATS_PERCENTILE_H_
#define AUSDB_STATS_PERCENTILE_H_

#include <span>
#include <vector>

namespace ausdb {
namespace stats {

/// \brief How a quantile of a finite sample is estimated.
enum class QuantileMethod {
  /// Linear interpolation between order statistics (R type 7, the default
  /// in R/NumPy).
  kLinear,
  /// Smallest order statistic with cumulative proportion >= p (R type 1).
  kNearestRank,
};

/// \brief The p-quantile of `sorted` (which must be ascending), p in [0,1].
double QuantileOfSorted(std::span<const double> sorted, double p,
                        QuantileMethod method = QuantileMethod::kLinear);

/// \brief The p-quantile of `data` (any order; copies and sorts).
double Quantile(std::span<const double> data, double p,
                QuantileMethod method = QuantileMethod::kLinear);

/// \brief Several quantiles of `data` in one sort.
std::vector<double> Quantiles(std::span<const double> data,
                              std::span<const double> ps,
                              QuantileMethod method = QuantileMethod::kLinear);

/// \brief Empirical CDF of `data` evaluated at x: fraction of elements <= x.
double EmpiricalCdf(std::span<const double> data, double x);

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_PERCENTILE_H_
