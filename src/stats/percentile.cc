#include "src/stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace ausdb {
namespace stats {

double QuantileOfSorted(std::span<const double> sorted, double p,
                        QuantileMethod method) {
  AUSDB_CHECK(!sorted.empty()) << "Quantile of an empty sample";
  AUSDB_CHECK(p >= 0.0 && p <= 1.0) << "Quantile p must be in [0,1], got "
                                    << p;
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  switch (method) {
    case QuantileMethod::kLinear: {
      const double h = p * static_cast<double>(n - 1);
      const size_t lo = static_cast<size_t>(std::floor(h));
      const size_t hi = std::min(lo + 1, n - 1);
      return Lerp(sorted[lo], sorted[hi], h - static_cast<double>(lo));
    }
    case QuantileMethod::kNearestRank: {
      if (p == 0.0) return sorted[0];
      const size_t rank =
          static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
      return sorted[std::min(rank == 0 ? 0 : rank - 1, n - 1)];
    }
  }
  return sorted[0];
}

double Quantile(std::span<const double> data, double p,
                QuantileMethod method) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  return QuantileOfSorted(copy, p, method);
}

std::vector<double> Quantiles(std::span<const double> data,
                              std::span<const double> ps,
                              QuantileMethod method) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(QuantileOfSorted(copy, p, method));
  return out;
}

double EmpiricalCdf(std::span<const double> data, double x) {
  if (data.empty()) return 0.0;
  size_t count = 0;
  for (double v : data) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(data.size());
}

}  // namespace stats
}  // namespace ausdb
