#ifndef AUSDB_STATS_QUANTILES_H_
#define AUSDB_STATS_QUANTILES_H_

namespace ausdb {
namespace stats {

/// \brief CDF of the standard normal distribution, Φ(x).
double NormalCdf(double x);

/// \brief Quantile (inverse CDF) of the standard normal: x with Φ(x) = p.
/// Requires p in (0, 1).
double NormalQuantile(double p);

/// \brief Upper percentile z_q of the standard normal: the value with
/// probability q to its right, i.e. NormalQuantile(1 - q).
///
/// This is the z_{(1-c)/2} appearing in the paper's Lemmas 1 and 2.
double NormalUpperPercentile(double q);

/// \brief CDF of Student's t distribution with `dof` degrees of freedom.
double StudentTCdf(double t, double dof);

/// \brief Quantile of Student's t distribution: t with CDF(t) = p.
/// Requires p in (0, 1) and dof > 0.
double StudentTQuantile(double p, double dof);

/// \brief Upper percentile t_q with `dof` degrees of freedom (the
/// t_{(1-c)/2} of Lemma 2): the value with probability q to its right.
double StudentTUpperPercentile(double q, double dof);

/// \brief CDF of the chi-square distribution with `dof` degrees of freedom.
double ChiSquareCdf(double x, double dof);

/// \brief Quantile of the chi-square distribution: x with CDF(x) = p.
/// Requires p in [0, 1) and dof > 0.
double ChiSquareQuantile(double p, double dof);

/// \brief Upper percentile χ²_q with `dof` degrees of freedom (the
/// χ²_{(1-c)/2} / χ²_{(1+c)/2} of Lemma 2): the value with probability q to
/// its right.
double ChiSquareUpperPercentile(double q, double dof);

/// \brief CDF of the F distribution with (d1, d2) degrees of freedom.
double FCdf(double x, double d1, double d2);

/// \brief Quantile of the F distribution.
double FQuantile(double p, double d1, double d2);

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_QUANTILES_H_
