#include "src/stats/special_functions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace ausdb {
namespace stats {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
constexpr int kMaxIterations = 500;

// Series representation of P(a, x), valid and fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1.
// Modified Lentz's method.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) <= kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

// Continued fraction for the incomplete beta function (Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) <= kEps) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  AUSDB_CHECK(x > 0.0) << "LogGamma requires x > 0, got " << x;
  // Lanczos approximation, g = 7, 9 coefficients (Godfrey's values).
  static const double kCoeffs[9] = {
      0.99999999999980993,      676.5203681218851,   -1259.1392167224028,
      771.32342877765313,       -176.61502916214059, 12.507343278686905,
      -0.13857109526572012,     9.9843695780195716e-6,
      1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos series in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoeffs[0];
  for (int i = 1; i < 9; ++i) sum += kCoeffs[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  AUSDB_CHECK(a > 0.0 && x >= 0.0)
      << "RegularizedGammaP requires a > 0, x >= 0; got a=" << a
      << " x=" << x;
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  AUSDB_CHECK(a > 0.0 && x >= 0.0)
      << "RegularizedGammaQ requires a > 0, x >= 0; got a=" << a
      << " x=" << x;
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double InverseRegularizedGammaP(double a, double p) {
  AUSDB_CHECK(a > 0.0) << "InverseRegularizedGammaP requires a > 0";
  AUSDB_CHECK(p >= 0.0 && p < 1.0)
      << "InverseRegularizedGammaP requires p in [0,1), got " << p;
  if (p == 0.0) return 0.0;

  const double gln = LogGamma(a);
  const double a1 = a - 1.0;
  const double lna1 = (a > 1.0) ? std::log(a1) : 0.0;
  const double afac = (a > 1.0) ? std::exp(a1 * (lna1 - 1.0) - gln) : 0.0;

  double x;
  if (a > 1.0) {
    // Wilson-Hilferty starting value.
    const double pp = (p < 0.5) ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) -
               t;
    if (p < 0.5) z = -z;
    x = std::max(1e-3,
                 a * std::pow(1.0 - 1.0 / (9.0 * a) -
                                  z / (3.0 * std::sqrt(a)),
                              3.0));
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / a);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }

  // Halley iteration on P(a, x) - p = 0.
  for (int it = 0; it < 24; ++it) {
    if (x <= 0.0) return 0.0;
    const double err = RegularizedGammaP(a, x) - p;
    double t;
    if (a > 1.0) {
      t = afac * std::exp(-(x - a1) + a1 * (std::log(x) - lna1));
    } else {
      t = std::exp(-x + a1 * std::log(x) - gln);
    }
    const double u = err / t;
    // Halley step.
    t = u / (1.0 - 0.5 * std::min(1.0, u * (a1 / x - 1.0)));
    x -= t;
    if (x <= 0.0) x = 0.5 * (x + t);
    if (std::abs(t) < kEps * x) break;
  }
  return x;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  AUSDB_CHECK(a > 0.0 && b > 0.0)
      << "RegularizedIncompleteBeta requires a, b > 0; got a=" << a
      << " b=" << b;
  AUSDB_CHECK(x >= 0.0 && x <= 1.0)
      << "RegularizedIncompleteBeta requires x in [0,1], got " << x;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double InverseRegularizedIncompleteBeta(double a, double b, double p) {
  AUSDB_CHECK(a > 0.0 && b > 0.0)
      << "InverseRegularizedIncompleteBeta requires a, b > 0";
  AUSDB_CHECK(p >= 0.0 && p <= 1.0)
      << "InverseRegularizedIncompleteBeta requires p in [0,1], got " << p;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  double x;
  if (a >= 1.0 && b >= 1.0) {
    // Abramowitz & Stegun 26.5.22 initial approximation.
    const double pp = (p < 0.5) ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double z = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) -
               t;
    if (p < 0.5) z = -z;
    const double al = (Sq(z) - 3.0) / 6.0;
    const double h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
    const double w =
        z * std::sqrt(al + h) / h -
        (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) *
            (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
    x = a / (a + b * std::exp(2.0 * w));
  } else {
    const double lna = std::log(a / (a + b));
    const double lnb = std::log(b / (a + b));
    const double t = std::exp(a * lna) / a;
    const double u = std::exp(b * lnb) / b;
    const double w = t + u;
    if (p < t / w) {
      x = std::pow(a * w * p, 1.0 / a);
    } else {
      x = 1.0 - std::pow(b * w * (1.0 - p), 1.0 / b);
    }
  }

  const double afac =
      -(LogGamma(a) + LogGamma(b) - LogGamma(a + b));
  const double a1 = a - 1.0;
  const double b1 = b - 1.0;
  // Newton iteration with bisection-style safeguards.
  for (int it = 0; it < 16; ++it) {
    if (x == 0.0 || x == 1.0) return x;
    const double err = RegularizedIncompleteBeta(a, b, x) - p;
    double t = std::exp(a1 * std::log(x) + b1 * std::log(1.0 - x) + afac);
    const double u = err / t;
    t = u / (1.0 - 0.5 * std::min(1.0, u * (a1 / x - b1 / (1.0 - x))));
    x -= t;
    if (x <= 0.0) x = 0.5 * (x + t);
    if (x >= 1.0) x = 0.5 * (x + t + 1.0);
    if (std::abs(t) < kEps * x && it > 0) break;
  }
  return x;
}

double Erfc(double x) { return std::erfc(x); }

double Erf(double x) { return std::erf(x); }

double ErfInv(double x) {
  AUSDB_CHECK(x > -1.0 && x < 1.0)
      << "ErfInv requires |x| < 1, got " << x;
  if (x == 0.0) return 0.0;
  // Initial guess from a rational approximation (Giles 2012 style), then
  // two Newton steps using the exact derivative 2/sqrt(pi) * exp(-y^2).
  double w = -std::log((1.0 - x) * (1.0 + x));
  double y;
  if (w < 6.25) {
    w -= 3.125;
    y = -3.6444120640178196996e-21;
    y = y * w + -1.685059138182016589e-19;
    y = y * w + 1.2858480715256400167e-18;
    y = y * w + 1.115787767802518096e-17;
    y = y * w + -1.333171662854620906e-16;
    y = y * w + 2.0972767875968561637e-17;
    y = y * w + 6.6376381343583238325e-15;
    y = y * w + -4.0545662729752068639e-14;
    y = y * w + -8.1519341976054721522e-14;
    y = y * w + 2.6335093153082322977e-12;
    y = y * w + -1.2975133253453532498e-11;
    y = y * w + -5.4154120542946279317e-11;
    y = y * w + 1.051212273321532285e-09;
    y = y * w + -4.1126339803469836976e-09;
    y = y * w + -2.9070369957882005086e-08;
    y = y * w + 4.2347877827932403518e-07;
    y = y * w + -1.3654692000834678645e-06;
    y = y * w + -1.3882523362786468719e-05;
    y = y * w + 0.0001867342080340571352;
    y = y * w + -0.00074070253416626697512;
    y = y * w + -0.0060336708714301490533;
    y = y * w + 0.24015818242558961693;
    y = y * w + 1.6536545626831027356;
  } else if (w < 16.0) {
    w = std::sqrt(w) - 3.25;
    y = 2.2137376921775787049e-09;
    y = y * w + 9.0756561938885390979e-08;
    y = y * w + -2.7517406297064545428e-07;
    y = y * w + 1.8239629214389227755e-08;
    y = y * w + 1.5027403968909827627e-06;
    y = y * w + -4.013867526981545969e-06;
    y = y * w + 2.9234449089955446044e-06;
    y = y * w + 1.2475304481671778723e-05;
    y = y * w + -4.7318229009055733981e-05;
    y = y * w + 6.8284851459573175448e-05;
    y = y * w + 2.4031110387097893999e-05;
    y = y * w + -0.0003550375203628474796;
    y = y * w + 0.00095328937973738049703;
    y = y * w + -0.0016882755560235047313;
    y = y * w + 0.0024914420961078508066;
    y = y * w + -0.0037512085075692412107;
    y = y * w + 0.005370914553590063617;
    y = y * w + 1.0052589676941592334;
    y = y * w + 3.0838856104922207635;
  } else {
    w = std::sqrt(w) - 5.0;
    y = -2.7109920616438573243e-11;
    y = y * w + -2.5556418169965252055e-10;
    y = y * w + 1.5076572693500548083e-09;
    y = y * w + -3.7894654401267369937e-09;
    y = y * w + 7.6157012080783393804e-09;
    y = y * w + -1.4960026627149240478e-08;
    y = y * w + 2.9147953450901080826e-08;
    y = y * w + -6.7711997758452339498e-08;
    y = y * w + 2.2900482228026654717e-07;
    y = y * w + -9.9298272942317002539e-07;
    y = y * w + 4.5260625972231537039e-06;
    y = y * w + -1.9681778105531670567e-05;
    y = y * w + 7.5995277030017761139e-05;
    y = y * w + -0.00021503011930044477347;
    y = y * w + -0.00013871931833623122026;
    y = y * w + 1.0103004648645343977;
    y = y * w + 4.8499064014085844221;
  }
  y *= x;
  // Two Newton refinements.
  static const double kTwoOverSqrtPi = 2.0 / std::sqrt(M_PI);
  for (int i = 0; i < 2; ++i) {
    const double err = Erf(y) - x;
    y -= err / (kTwoOverSqrtPi * std::exp(-y * y));
  }
  return y;
}

}  // namespace stats
}  // namespace ausdb
