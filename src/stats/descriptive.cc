#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ausdb {
namespace stats {

double SummaryStats::SampleStdDev() const {
  return std::sqrt(sample_variance);
}

void MomentAccumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) +
         6.0 * delta_n2 * m2_ - 4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void MomentAccumulator::Merge(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double mean = mean_ + delta * nb / n;
  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n_ + other.n_;
}

double MomentAccumulator::SampleVariance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double MomentAccumulator::PopulationVariance() const {
  if (n_ < 1) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double MomentAccumulator::SampleStdDev() const {
  return std::sqrt(SampleVariance());
}

double MomentAccumulator::Skewness() const {
  if (n_ < 2 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double MomentAccumulator::ExcessKurtosis() const {
  if (n_ < 2 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

void MomentAccumulator::Reset() { *this = MomentAccumulator(); }

double Mean(std::span<const double> data) {
  if (data.empty()) return 0.0;
  MomentAccumulator acc;
  for (double x : data) acc.Add(x);
  return acc.mean();
}

double SampleVariance(std::span<const double> data) {
  MomentAccumulator acc;
  for (double x : data) acc.Add(x);
  return acc.SampleVariance();
}

double SampleStdDev(std::span<const double> data) {
  return std::sqrt(SampleVariance(data));
}

double PopulationVariance(std::span<const double> data) {
  MomentAccumulator acc;
  for (double x : data) acc.Add(x);
  return acc.PopulationVariance();
}

SummaryStats Summarize(std::span<const double> data) {
  MomentAccumulator acc;
  for (double x : data) acc.Add(x);
  SummaryStats s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.sample_variance = acc.SampleVariance();
  s.population_variance = acc.PopulationVariance();
  s.min = acc.min();
  s.max = acc.max();
  s.skewness = acc.Skewness();
  s.excess_kurtosis = acc.ExcessKurtosis();
  return s;
}

}  // namespace stats
}  // namespace ausdb
