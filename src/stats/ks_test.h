#ifndef AUSDB_STATS_KS_TEST_H_
#define AUSDB_STATS_KS_TEST_H_

#include <functional>
#include <span>

#include "src/common/result.h"

namespace ausdb {
namespace stats {

/// Result of a Kolmogorov-Smirnov test.
struct KsResult {
  /// The KS statistic: the max absolute ECDF deviation.
  double statistic = 0.0;
  /// Asymptotic p-value (Kolmogorov distribution with the effective
  /// sample size correction).
  double p_value = 1.0;
};

/// \brief One-sample KS test of a sample against a reference CDF — the
/// goodness-of-fit check a stream system runs to decide whether a
/// learned distribution still matches fresh observations (model
/// staleness detection).
///
/// `cdf` must be the continuous reference distribution's CDF. Fails with
/// InsufficientData on an empty sample.
Result<KsResult> KsTestAgainstCdf(
    std::span<const double> sample,
    const std::function<double(double)>& cdf);

/// \brief Two-sample KS test: are two samples drawn from the same
/// (continuous) distribution?
Result<KsResult> KsTestTwoSample(std::span<const double> a,
                                 std::span<const double> b);

/// \brief Survival function of the Kolmogorov distribution:
/// Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); the asymptotic
/// p-value of a scaled KS statistic.
double KolmogorovSurvival(double x);

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_KS_TEST_H_
