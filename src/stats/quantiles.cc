#include "src/stats/quantiles.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/stats/special_functions.h"

namespace ausdb {
namespace stats {

double NormalCdf(double x) {
  return 0.5 * Erfc(-x / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  AUSDB_CHECK(p > 0.0 && p < 1.0)
      << "NormalQuantile requires p in (0,1), got " << p;
  return -std::sqrt(2.0) * ErfInv(1.0 - 2.0 * p);
}

double NormalUpperPercentile(double q) {
  AUSDB_CHECK(q > 0.0 && q < 1.0)
      << "NormalUpperPercentile requires q in (0,1), got " << q;
  return NormalQuantile(1.0 - q);
}

double StudentTCdf(double t, double dof) {
  AUSDB_CHECK(dof > 0.0) << "StudentTCdf requires dof > 0, got " << dof;
  if (t == 0.0) return 0.5;
  // CDF via the regularized incomplete beta function:
  //   F(t) = 1 - I_{v/(v+t^2)}(v/2, 1/2) / 2   for t > 0, symmetric below.
  const double x = dof / (dof + t * t);
  const double tail =
      0.5 * RegularizedIncompleteBeta(0.5 * dof, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double dof) {
  AUSDB_CHECK(p > 0.0 && p < 1.0)
      << "StudentTQuantile requires p in (0,1), got " << p;
  AUSDB_CHECK(dof > 0.0) << "StudentTQuantile requires dof > 0";
  if (p == 0.5) return 0.0;
  // Invert via the incomplete beta inverse on the appropriate tail.
  const bool upper = p > 0.5;
  const double tail = upper ? 2.0 * (1.0 - p) : 2.0 * p;
  const double x = InverseRegularizedIncompleteBeta(0.5 * dof, 0.5, tail);
  double t = std::sqrt(dof * (1.0 - x) / x);
  return upper ? t : -t;
}

double StudentTUpperPercentile(double q, double dof) {
  AUSDB_CHECK(q > 0.0 && q < 1.0)
      << "StudentTUpperPercentile requires q in (0,1), got " << q;
  return StudentTQuantile(1.0 - q, dof);
}

double ChiSquareCdf(double x, double dof) {
  AUSDB_CHECK(dof > 0.0) << "ChiSquareCdf requires dof > 0";
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * dof, 0.5 * x);
}

double ChiSquareQuantile(double p, double dof) {
  AUSDB_CHECK(p >= 0.0 && p < 1.0)
      << "ChiSquareQuantile requires p in [0,1), got " << p;
  AUSDB_CHECK(dof > 0.0) << "ChiSquareQuantile requires dof > 0";
  return 2.0 * InverseRegularizedGammaP(0.5 * dof, p);
}

double ChiSquareUpperPercentile(double q, double dof) {
  AUSDB_CHECK(q > 0.0 && q <= 1.0)
      << "ChiSquareUpperPercentile requires q in (0,1], got " << q;
  if (q == 1.0) return 0.0;
  return ChiSquareQuantile(1.0 - q, dof);
}

double FCdf(double x, double d1, double d2) {
  AUSDB_CHECK(d1 > 0.0 && d2 > 0.0) << "FCdf requires d1, d2 > 0";
  if (x <= 0.0) return 0.0;
  const double z = d1 * x / (d1 * x + d2);
  return RegularizedIncompleteBeta(0.5 * d1, 0.5 * d2, z);
}

double FQuantile(double p, double d1, double d2) {
  AUSDB_CHECK(p >= 0.0 && p < 1.0)
      << "FQuantile requires p in [0,1), got " << p;
  AUSDB_CHECK(d1 > 0.0 && d2 > 0.0) << "FQuantile requires d1, d2 > 0";
  if (p == 0.0) return 0.0;
  const double z = InverseRegularizedIncompleteBeta(0.5 * d1, 0.5 * d2, p);
  return d2 * z / (d1 * (1.0 - z));
}

}  // namespace stats
}  // namespace ausdb
