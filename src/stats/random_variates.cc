#include "src/stats/random_variates.h"

#include <cmath>

#include "src/common/logging.h"

namespace ausdb {
namespace stats {

double SampleExponential(Rng& rng, double lambda) {
  AUSDB_CHECK(lambda > 0.0) << "Exponential rate must be > 0";
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log(1.0 - rng.NextDouble()) / lambda;
}

double SampleGamma(Rng& rng, double k, double theta) {
  AUSDB_CHECK(k > 0.0 && theta > 0.0)
      << "Gamma requires k > 0 and theta > 0";
  if (k < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
    const double u = rng.NextDouble();
    return SampleGamma(rng, k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  // Marsaglia-Tsang (2000) squeeze method.
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDouble();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * theta;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * theta;
    }
  }
}

double SampleNormal(Rng& rng, double mu, double sigma) {
  AUSDB_CHECK(sigma >= 0.0) << "Normal sigma must be >= 0";
  return mu + sigma * rng.NextGaussian();
}

double SampleUniform(Rng& rng, double lo, double hi) {
  return rng.NextDouble(lo, hi);
}

double SampleWeibull(Rng& rng, double lambda, double k) {
  AUSDB_CHECK(lambda > 0.0 && k > 0.0)
      << "Weibull requires lambda > 0 and k > 0";
  const double u = 1.0 - rng.NextDouble();
  return lambda * std::pow(-std::log(u), 1.0 / k);
}

double SampleLognormal(Rng& rng, double mu_log, double sigma_log) {
  return std::exp(SampleNormal(rng, mu_log, sigma_log));
}

size_t SampleBinomial(Rng& rng, size_t n, double p) {
  AUSDB_CHECK(p >= 0.0 && p <= 1.0) << "Binomial p must be in [0,1]";
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (n <= 1000) {
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextDouble() < p) ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction for large n.
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  double x = std::round(mean + sd * rng.NextGaussian());
  if (x < 0.0) x = 0.0;
  if (x > static_cast<double>(n)) x = static_cast<double>(n);
  return static_cast<size_t>(x);
}

}  // namespace stats
}  // namespace ausdb
