#include "src/stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ausdb {
namespace stats {

double KolmogorovSurvival(double x) {
  if (x <= 0.0) return 1.0;
  // The alternating series converges extremely fast for x >= ~0.5; for
  // small x the dual (theta-function) form is used.
  if (x < 0.5) {
    // Q(x) = 1 - sqrt(2 pi)/x * sum_{k odd} exp(-k^2 pi^2 / (8 x^2)).
    const double t = M_PI * M_PI / (8.0 * x * x);
    double sum = 0.0;
    for (int k = 1; k <= 7; k += 2) {
      sum += std::exp(-static_cast<double>(k) * k * t);
    }
    return 1.0 - std::sqrt(2.0 * M_PI) / x * sum;
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

Result<KsResult> KsTestAgainstCdf(
    std::span<const double> sample,
    const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    return Status::InsufficientData("KS test needs a non-empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    d = std::max({d, std::abs(f - static_cast<double>(i) / n),
                  std::abs(static_cast<double>(i + 1) / n - f)});
  }
  KsResult result;
  result.statistic = d;
  // Asymptotic p-value with the standard finite-n adjustment.
  const double sqrt_n = std::sqrt(n);
  result.p_value =
      KolmogorovSurvival((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

Result<KsResult> KsTestTwoSample(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return Status::InsufficientData(
        "two-sample KS test needs two non-empty samples");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  size_t i = 0, j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  KsResult result;
  result.statistic = d;
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  result.p_value =
      KolmogorovSurvival((sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d);
  return result;
}

}  // namespace stats
}  // namespace ausdb
