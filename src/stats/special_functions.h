#ifndef AUSDB_STATS_SPECIAL_FUNCTIONS_H_
#define AUSDB_STATS_SPECIAL_FUNCTIONS_H_

namespace ausdb {
namespace stats {

/// \brief Natural log of the gamma function, ln Γ(x), for x > 0.
///
/// Lanczos approximation (g = 7, n = 9 coefficients); relative error below
/// 1e-13 over the positive real axis.
double LogGamma(double x);

/// \brief Regularized lower incomplete gamma function P(a, x) = γ(a,x)/Γ(a).
///
/// P(a, 0) = 0 and P(a, ∞) = 1. Uses the series expansion for x < a+1 and
/// the continued fraction (modified Lentz) otherwise. Requires a > 0,
/// x >= 0.
double RegularizedGammaP(double a, double x);

/// \brief Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// \brief Inverse of P(a, ·): returns x such that P(a, x) = p.
///
/// Halley iteration seeded with the Wilson-Hilferty normal approximation
/// (per Numerical Recipes §6.2.1). Requires a > 0 and p in [0, 1).
double InverseRegularizedGammaP(double a, double p);

/// \brief Regularized incomplete beta function I_x(a, b).
///
/// I_0 = 0 and I_1 = 1. Continued-fraction evaluation (modified Lentz) with
/// the symmetry transform I_x(a,b) = 1 - I_{1-x}(b,a) for convergence.
/// Requires a > 0, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

/// \brief Inverse of I_x(a, b) in x: returns x such that I_x(a, b) = p.
///
/// Newton iteration with a normal/approximation seed (per Numerical
/// Recipes §6.4). Requires a > 0, b > 0, p in [0, 1].
double InverseRegularizedIncompleteBeta(double a, double b, double p);

/// \brief Error function complement with high relative accuracy in the
/// tails; thin wrapper for symmetry with the rest of this header.
double Erfc(double x);

/// \brief Error function.
double Erf(double x);

/// \brief Inverse error function: y such that Erf(y) = x, |x| < 1.
double ErfInv(double x);

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_SPECIAL_FUNCTIONS_H_
