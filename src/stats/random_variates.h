#ifndef AUSDB_STATS_RANDOM_VARIATES_H_
#define AUSDB_STATS_RANDOM_VARIATES_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace ausdb {
namespace stats {

/// \brief Variate generators for the distribution families used by the
/// paper's synthetic workloads (Section V-A) and by the CarTel simulator.
///
/// These replace the paper's use of the R statistical package; each
/// generator is exact (inverse-CDF or accept-reject), not approximate.

/// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
double SampleExponential(Rng& rng, double lambda);

/// Gamma with shape k and scale theta (mean k*theta). Marsaglia-Tsang
/// squeeze method; the k < 1 case uses the boosting transform. Requires
/// k > 0, theta > 0.
double SampleGamma(Rng& rng, double k, double theta);

/// Normal with mean mu and standard deviation sigma. Requires sigma >= 0.
double SampleNormal(Rng& rng, double mu, double sigma);

/// Uniform on [lo, hi).
double SampleUniform(Rng& rng, double lo, double hi);

/// Weibull with scale lambda and shape k (inverse-CDF). Requires
/// lambda > 0, k > 0.
double SampleWeibull(Rng& rng, double lambda, double k);

/// Lognormal: exp(Normal(mu_log, sigma_log)).
double SampleLognormal(Rng& rng, double mu_log, double sigma_log);

/// Binomial(n, p) count by summation of Bernoulli draws for small n and a
/// normal approximation with continuity correction beyond n = 1000.
size_t SampleBinomial(Rng& rng, size_t n, double p);

/// n iid draws from any of the above via a callable.
template <typename F>
std::vector<double> SampleMany(size_t n, F&& draw) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(draw());
  return out;
}

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_RANDOM_VARIATES_H_
