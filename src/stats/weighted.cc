#include "src/stats/weighted.h"

#include <cmath>

#include "src/common/math_util.h"

namespace ausdb {
namespace stats {

namespace {

Status ValidateWeights(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("weights must not all be zero");
  }
  return Status::OK();
}

}  // namespace

Result<double> EffectiveSampleSize(std::span<const double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("effective sample size of no weights");
  }
  AUSDB_RETURN_NOT_OK(ValidateWeights(weights));
  KahanSum sum, sum_sq;
  for (double w : weights) {
    sum.Add(w);
    sum_sq.Add(w * w);
  }
  return Sq(sum.Get()) / sum_sq.Get();
}

Result<WeightedSummary> SummarizeWeighted(std::span<const double> values,
                                          std::span<const double> weights) {
  if (values.size() != weights.size()) {
    return Status::InvalidArgument(
        "values and weights must have the same size");
  }
  if (values.empty()) {
    return Status::InvalidArgument("cannot summarize an empty sample");
  }
  AUSDB_RETURN_NOT_OK(ValidateWeights(weights));

  KahanSum w_sum, wx_sum, w2_sum;
  for (size_t i = 0; i < values.size(); ++i) {
    w_sum.Add(weights[i]);
    wx_sum.Add(weights[i] * values[i]);
    w2_sum.Add(weights[i] * weights[i]);
  }
  WeightedSummary s;
  s.count = values.size();
  s.weight_sum = w_sum.Get();
  s.effective_sample_size = Sq(s.weight_sum) / w2_sum.Get();
  s.mean = wx_sum.Get() / s.weight_sum;

  KahanSum wd2_sum;
  for (size_t i = 0; i < values.size(); ++i) {
    wd2_sum.Add(weights[i] * Sq(values[i] - s.mean));
  }
  s.population_variance = wd2_sum.Get() / s.weight_sum;
  if (s.effective_sample_size > 1.0) {
    s.sample_variance = s.population_variance * s.effective_sample_size /
                        (s.effective_sample_size - 1.0);
  }
  return s;
}

Result<std::vector<double>> ExponentialDecayWeights(size_t n,
                                                    double decay) {
  if (n == 0) {
    return Status::InvalidArgument("need at least one weight");
  }
  if (!(decay > 0.0 && decay <= 1.0)) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  std::vector<double> weights(n);
  double w = 1.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = w;
    w *= decay;
  }
  return weights;
}

}  // namespace stats
}  // namespace ausdb
