#ifndef AUSDB_STATS_WEIGHTED_H_
#define AUSDB_STATS_WEIGHTED_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/result.h"

namespace ausdb {
namespace stats {

/// \brief Summary of a weighted sample.
///
/// Implements the paper's future-work direction (Section VII): samples of
/// different weights — e.g. recent observations weighing more — with the
/// *effective sample size* quantifying how much independent information
/// the weighted sample carries. Kish's formula
///   n_eff = (sum w)^2 / sum w^2
/// equals n for equal weights and shrinks as weights skew; accuracy
/// derivation then uses n_eff wherever the paper's lemmas use n.
struct WeightedSummary {
  size_t count = 0;
  double weight_sum = 0.0;
  /// Kish effective sample size.
  double effective_sample_size = 0.0;
  /// Weighted mean sum(w x)/sum(w).
  double mean = 0.0;
  /// Weighted population variance sum(w (x-mean)^2)/sum(w).
  double population_variance = 0.0;
  /// Unbiased (frequency-interpretation) weighted sample variance, scaled
  /// by n_eff/(n_eff - 1); 0 when n_eff <= 1.
  double sample_variance = 0.0;
};

/// Summarizes a weighted sample. Fails with InvalidArgument on size
/// mismatch, negative/non-finite weights, or all-zero weights.
Result<WeightedSummary> SummarizeWeighted(std::span<const double> values,
                                          std::span<const double> weights);

/// Kish effective sample size of a weight vector.
Result<double> EffectiveSampleSize(std::span<const double> weights);

/// \brief Exponential recency weights for a stream window: the i-th most
/// recent of `n` observations gets weight decay^i (decay in (0, 1]).
/// decay = 1 reproduces the unweighted case.
Result<std::vector<double>> ExponentialDecayWeights(size_t n, double decay);

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_WEIGHTED_H_
