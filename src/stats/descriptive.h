#ifndef AUSDB_STATS_DESCRIPTIVE_H_
#define AUSDB_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/result.h"

namespace ausdb {
namespace stats {

/// \brief One-pass summary of a sample: count, mean, variance (sample and
/// population), extrema, and higher moments.
struct SummaryStats {
  size_t count = 0;
  double mean = 0.0;
  /// Unbiased sample variance (divides by n-1); 0 when count < 2.
  double sample_variance = 0.0;
  /// Population variance (divides by n); 0 when count < 1.
  double population_variance = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Sample skewness (g1, population form); 0 when undefined.
  double skewness = 0.0;
  /// Excess kurtosis (g2, population form); 0 when undefined.
  double excess_kurtosis = 0.0;

  /// Sample standard deviation, sqrt(sample_variance).
  double SampleStdDev() const;
};

/// \brief Streaming moment accumulator (Welford / Terriberry updates).
///
/// Numerically stable online computation of mean, variance, skewness and
/// kurtosis; supports merging two accumulators (parallel reduction) and
/// removal-free windowed use via pairing with a queue.
class MomentAccumulator {
 public:
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const MomentAccumulator& other);

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when count < 2.
  double SampleVariance() const;
  /// Population variance; 0 when count < 1.
  double PopulationVariance() const;
  double SampleStdDev() const;
  double Skewness() const;
  double ExcessKurtosis() const;
  double min() const { return min_; }
  double max() const { return max_; }

  void Reset();

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> data);

/// Unbiased sample variance (n-1 denominator); 0 when size < 2.
double SampleVariance(std::span<const double> data);

/// Sample standard deviation.
double SampleStdDev(std::span<const double> data);

/// Population variance (n denominator); 0 when empty.
double PopulationVariance(std::span<const double> data);

/// Full one-pass summary of `data`.
SummaryStats Summarize(std::span<const double> data);

}  // namespace stats
}  // namespace ausdb

#endif  // AUSDB_STATS_DESCRIPTIVE_H_
