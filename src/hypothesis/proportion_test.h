#ifndef AUSDB_HYPOTHESIS_PROPORTION_TEST_H_
#define AUSDB_HYPOTHESIS_PROPORTION_TEST_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

/// \brief Population-proportion test (the evaluation behind pTest).
///
/// H0: Pr[pred] = tau; H1: Pr[pred] op tau. `p_hat` is the observed
/// probability of the predicate (computed from the distribution in the
/// field), `n` the d.f. sample size behind it. The test statistic is
/// (p_hat - tau) / sqrt(tau (1-tau) / n) referred to the standard normal.
/// Returns true iff H0 is rejected at significance `alpha`.
///
/// Degenerate thresholds (tau == 0 or tau == 1) are decided exactly:
/// e.g. H1: Pr > 1 can never be accepted.
Result<bool> ProportionTest(double p_hat, size_t n, TestOp op, double tau,
                            double alpha);

/// p-value of the proportion test.
Result<double> ProportionTestPValue(double p_hat, size_t n, TestOp op,
                                    double tau);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_PROPORTION_TEST_H_
