#include "src/hypothesis/power.h"

#include <cmath>

#include "src/stats/quantiles.h"

namespace ausdb {
namespace hypothesis {

PowerEstimate EstimatePower(size_t trials,
                            const std::function<TestOutcome()>& run_once) {
  PowerEstimate est;
  est.trials = trials;
  for (size_t i = 0; i < trials; ++i) {
    switch (run_once()) {
      case TestOutcome::kTrue:
        ++est.true_count;
        break;
      case TestOutcome::kFalse:
        ++est.false_count;
        break;
      case TestOutcome::kUnsure:
        ++est.unsure_count;
        break;
    }
  }
  return est;
}

Result<double> AnalyticalMeanTestPower(double mu_true, double sigma,
                                       size_t n, double c, double alpha,
                                       TestOp op) {
  if (!(sigma > 0.0) || !std::isfinite(sigma)) {
    return Status::InvalidArgument("sigma must be finite and > 0");
  }
  if (n == 0) {
    return Status::InvalidArgument("sample size must be >= 1");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0,1)");
  }
  const double shift =
      (mu_true - c) / (sigma / std::sqrt(static_cast<double>(n)));
  switch (op) {
    case TestOp::kGreater: {
      const double z = stats::NormalUpperPercentile(alpha);
      return 1.0 - stats::NormalCdf(z - shift);
    }
    case TestOp::kLess: {
      const double z = stats::NormalUpperPercentile(alpha);
      return stats::NormalCdf(-z - shift);
    }
    case TestOp::kNotEqual: {
      const double z = stats::NormalUpperPercentile(alpha / 2.0);
      return stats::NormalCdf(-z - shift) +
             (1.0 - stats::NormalCdf(z - shift));
    }
  }
  return Status::Internal("unhandled test op");
}

Result<size_t> RequiredSampleSize(double mu_true, double sigma, double c,
                                  double alpha, TestOp op,
                                  double target_power, size_t max_n) {
  if (!(target_power > 0.0 && target_power < 1.0)) {
    return Status::InvalidArgument("target power must be in (0,1)");
  }
  AUSDB_ASSIGN_OR_RETURN(double at_max, AnalyticalMeanTestPower(
                                            mu_true, sigma, max_n, c,
                                            alpha, op));
  if (at_max < target_power) {
    return Status::OutOfRange(
        "target power unreachable: even n=" + std::to_string(max_n) +
        " gives " + std::to_string(at_max));
  }
  size_t lo = 1, hi = max_n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    AUSDB_ASSIGN_OR_RETURN(
        double p, AnalyticalMeanTestPower(mu_true, sigma, mid, c, alpha,
                                          op));
    if (p >= target_power) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace hypothesis
}  // namespace ausdb
