#ifndef AUSDB_HYPOTHESIS_DRIFT_TEST_H_
#define AUSDB_HYPOTHESIS_DRIFT_TEST_H_

#include <span>

#include "src/common/result.h"
#include "src/dist/distribution.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

/// Outcome of one goodness-of-fit drift check.
struct DriftTestResult {
  /// KS statistic of the fresh window against the reference CDF.
  double statistic = 0.0;
  /// Asymptotic p-value under H0: "the window was drawn from the
  /// reference distribution".
  double p_value = 1.0;
  /// kTrue = drift (H0 rejected at `significance`), kFalse = no
  /// evidence of drift, kUnsure = window smaller than `min_window`.
  TestOutcome outcome = TestOutcome::kUnsure;
};

/// \brief One-sample KS goodness-of-fit drift test: has the stream
/// moved away from a previously learned distribution?
///
/// This is the hypothesis-test face of model staleness (the same
/// three-state significance idiom as the paper's predicates): H0 is
/// "the learned model still fits", and a small p-value is evidence the
/// distribution drifted. Deterministic — a pure function of the inputs.
Result<DriftTestResult> KsDriftTest(std::span<const double> window,
                                    const dist::Distribution& reference,
                                    double significance,
                                    size_t min_window = 2);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_DRIFT_TEST_H_
