#ifndef AUSDB_HYPOTHESIS_MEAN_TESTS_H_
#define AUSDB_HYPOTHESIS_MEAN_TESTS_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

/// The summary statistics a population-mean test consumes: in AUSDB these
/// come from a distribution (mean, stddev) and its d.f. sample size.
struct SampleStatistics {
  double mean = 0.0;
  double stddev = 0.0;
  size_t n = 0;
};

/// \brief One-sample population mean test (the evaluation behind mTest).
///
/// H0: E(X) = c; H1: E(X) op c. The test statistic is
/// (mean - c)/(s/sqrt(n)), referred to a Student t with n-1 dof for
/// n < 30 and a standard normal otherwise (matching Lemma 2's regimes).
/// Returns true iff H0 is rejected at significance `alpha` (i.e. H1 is
/// statistically significant). Requires n >= 2, alpha in (0,1).
Result<bool> MeanTest(const SampleStatistics& x, TestOp op, double c,
                      double alpha);

/// p-value of the same test (one- or two-sided per `op`).
Result<double> MeanTestPValue(const SampleStatistics& x, TestOp op,
                              double c);

/// \brief Two-sample mean-difference test (the evaluation behind mdTest).
///
/// H0: E(X) - E(Y) = c; H1: E(X) - E(Y) op c. Welch's unequal-variance
/// statistic with Welch-Satterthwaite degrees of freedom; switches to the
/// normal reference when both samples have n >= 30.
Result<bool> MeanDifferenceTest(const SampleStatistics& x,
                                const SampleStatistics& y, TestOp op,
                                double c, double alpha);

/// p-value of the mean-difference test.
Result<double> MeanDifferenceTestPValue(const SampleStatistics& x,
                                        const SampleStatistics& y,
                                        TestOp op, double c);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_MEAN_TESTS_H_
