#ifndef AUSDB_HYPOTHESIS_TEST_TYPES_H_
#define AUSDB_HYPOTHESIS_TEST_TYPES_H_

#include <string_view>

namespace ausdb {
namespace hypothesis {

/// Relational operator of an alternative hypothesis H1 (paper Section
/// IV-B): E(X) op c, E(X)-E(Y) op c, or Pr[pred] op tau.
enum class TestOp {
  kLess,      ///< '<'
  kGreater,   ///< '>'
  kNotEqual,  ///< '<>' (two-sided)
};

/// Three-state result of a significance predicate with coupled tests
/// (Section IV-C). Basic (single-test) predicates only produce kTrue /
/// kFalse.
enum class TestOutcome {
  kTrue,
  kFalse,
  kUnsure,
};

std::string_view TestOpToString(TestOp op);
std::string_view TestOutcomeToString(TestOutcome outcome);

/// '>' <-> '<'; '<>' is its own inverse (only used by COUPLED-TESTS in the
/// one-sided branch, which never passes '<>').
TestOp InverseOp(TestOp op);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_TEST_TYPES_H_
