#ifndef AUSDB_HYPOTHESIS_SIGNIFICANCE_PREDICATES_H_
#define AUSDB_HYPOTHESIS_SIGNIFICANCE_PREDICATES_H_

#include "src/common/result.h"
#include "src/dist/random_var.h"
#include "src/hypothesis/mean_tests.h"
#include "src/hypothesis/proportion_test.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

/// Comparison operator of a deterministic-style value predicate `X cmp v`
/// inside a pTest.
enum class CompareOp {
  kLt,  ///< X <  v
  kLe,  ///< X <= v
  kGt,  ///< X >  v
  kGe,  ///< X >= v
};

/// A value predicate `X cmp value` — the `pred` argument of pTest.
struct ValuePredicate {
  CompareOp cmp = CompareOp::kGt;
  double value = 0.0;
};

/// Probability of `pred` under distribution `d` (exact, via the CDF).
double PredicateProbability(const dist::Distribution& d,
                            const ValuePredicate& pred);

/// Extracts the SampleStatistics (mean, stddev, d.f. sample size) a mean
/// test needs from a random variable. Fails with InsufficientData for
/// deterministic variables or n < 2.
Result<SampleStatistics> StatisticsOf(const dist::RandomVar& x);

/// \brief mTest(X, op, c, alpha) — paper Section IV-B.
///
/// Determines whether "E(X) op c" is statistically significant at level
/// alpha: H0: E(X) = c vs H1: E(X) op c, evaluated directly on X's
/// distribution and accuracy information (no raw data access).
Result<bool> MTest(const dist::RandomVar& x, TestOp op, double c,
                   double alpha);

/// \brief mdTest(X, Y, op, c, alpha): H0: E(X)-E(Y) = c vs
/// H1: E(X)-E(Y) op c. The most common usage is c = 0, comparing E(X)
/// with E(Y).
Result<bool> MdTest(const dist::RandomVar& x, const dist::RandomVar& y,
                    TestOp op, double c, double alpha);

/// \brief pTest(pred, tau, alpha): H0: Pr[pred] = tau vs
/// H1: Pr[pred] op tau (the paper's pTest fixes op = '>'; the parameter
/// generalizes it, which COUPLED-TESTS needs for the inverse test).
///
/// The observed Pr[pred] is computed exactly from X's distribution; the
/// d.f. sample size behind that distribution calibrates the test.
Result<bool> PTest(const dist::RandomVar& x, const ValuePredicate& pred,
                   double tau, double alpha,
                   TestOp op = TestOp::kGreater);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_SIGNIFICANCE_PREDICATES_H_
