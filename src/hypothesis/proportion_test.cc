#include "src/hypothesis/proportion_test.h"

#include <cmath>

#include "src/stats/quantiles.h"

namespace ausdb {
namespace hypothesis {

Result<double> ProportionTestPValue(double p_hat, size_t n, TestOp op,
                                    double tau) {
  if (!(p_hat >= 0.0 && p_hat <= 1.0)) {
    return Status::InvalidArgument("observed proportion must be in [0,1]");
  }
  if (!(tau >= 0.0 && tau <= 1.0)) {
    return Status::InvalidArgument("threshold tau must be in [0,1]");
  }
  if (n == 0) {
    return Status::InsufficientData(
        "proportion test requires a non-empty sample");
  }
  if (tau == 0.0 || tau == 1.0) {
    // Degenerate null: the sampling distribution under H0 is a point
    // mass, so the decision is exact.
    const bool h1_holds = (op == TestOp::kGreater && p_hat > tau) ||
                          (op == TestOp::kLess && p_hat < tau) ||
                          (op == TestOp::kNotEqual && p_hat != tau);
    return h1_holds ? 0.0 : 1.0;
  }
  const double se = std::sqrt(tau * (1.0 - tau) / static_cast<double>(n));
  const double z = (p_hat - tau) / se;
  switch (op) {
    case TestOp::kGreater:
      return 1.0 - stats::NormalCdf(z);
    case TestOp::kLess:
      return stats::NormalCdf(z);
    case TestOp::kNotEqual:
      return 2.0 * (1.0 - stats::NormalCdf(std::abs(z)));
  }
  return 1.0;
}

Result<bool> ProportionTest(double p_hat, size_t n, TestOp op, double tau,
                            double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("significance level must be in (0,1)");
  }
  AUSDB_ASSIGN_OR_RETURN(double p, ProportionTestPValue(p_hat, n, op, tau));
  return p <= alpha;
}

}  // namespace hypothesis
}  // namespace ausdb
