#include "src/hypothesis/drift_test.h"

#include "src/stats/ks_test.h"

namespace ausdb {
namespace hypothesis {

Result<DriftTestResult> KsDriftTest(std::span<const double> window,
                                    const dist::Distribution& reference,
                                    double significance,
                                    size_t min_window) {
  if (!(significance > 0.0 && significance < 1.0)) {
    return Status::InvalidArgument(
        "drift significance must be in (0, 1)");
  }
  DriftTestResult result;
  if (window.size() < min_window) {
    result.outcome = TestOutcome::kUnsure;
    return result;
  }
  AUSDB_ASSIGN_OR_RETURN(
      stats::KsResult ks,
      stats::KsTestAgainstCdf(
          window, [&reference](double x) { return reference.Cdf(x); }));
  result.statistic = ks.statistic;
  result.p_value = ks.p_value;
  result.outcome = ks.p_value < significance ? TestOutcome::kTrue
                                             : TestOutcome::kFalse;
  return result;
}

}  // namespace hypothesis
}  // namespace ausdb
