#include "src/hypothesis/mean_tests.h"

#include <cmath>

#include "src/accuracy/mean_variance_ci.h"
#include "src/common/math_util.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace hypothesis {

namespace {

Status ValidateAlpha(double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("significance level must be in (0,1)");
  }
  return Status::OK();
}

Status ValidateStats(const SampleStatistics& s) {
  if (s.n < 2) {
    return Status::InsufficientData(
        "mean tests require sample size >= 2; got " + std::to_string(s.n));
  }
  if (!(s.stddev >= 0.0) || !std::isfinite(s.stddev)) {
    return Status::InvalidArgument("sample stddev must be finite and >= 0");
  }
  return Status::OK();
}

// One-sided upper-tail p-value for a statistic referred to t(dof) when
// small-sample, else the normal. dof <= 0 selects the normal reference.
double UpperTailP(double statistic, double dof) {
  if (dof > 0.0) return 1.0 - stats::StudentTCdf(statistic, dof);
  return 1.0 - stats::NormalCdf(statistic);
}

double PValueFor(TestOp op, double statistic, double dof) {
  switch (op) {
    case TestOp::kGreater:
      return UpperTailP(statistic, dof);
    case TestOp::kLess:
      return UpperTailP(-statistic, dof);
    case TestOp::kNotEqual:
      return 2.0 * UpperTailP(std::abs(statistic), dof);
  }
  return 1.0;
}

}  // namespace

Result<double> MeanTestPValue(const SampleStatistics& x, TestOp op,
                              double c) {
  AUSDB_RETURN_NOT_OK(ValidateStats(x));
  const double nn = static_cast<double>(x.n);
  if (x.stddev == 0.0) {
    // Degenerate sample: the mean is known exactly.
    const bool h1_holds = (op == TestOp::kGreater && x.mean > c) ||
                          (op == TestOp::kLess && x.mean < c) ||
                          (op == TestOp::kNotEqual && x.mean != c);
    return h1_holds ? 0.0 : 1.0;
  }
  const double statistic = (x.mean - c) / (x.stddev / std::sqrt(nn));
  const double dof =
      x.n < accuracy::kSmallSampleThreshold ? nn - 1.0 : 0.0;
  return PValueFor(op, statistic, dof);
}

Result<bool> MeanTest(const SampleStatistics& x, TestOp op, double c,
                      double alpha) {
  AUSDB_RETURN_NOT_OK(ValidateAlpha(alpha));
  AUSDB_ASSIGN_OR_RETURN(double p, MeanTestPValue(x, op, c));
  return p <= alpha;
}

Result<double> MeanDifferenceTestPValue(const SampleStatistics& x,
                                        const SampleStatistics& y,
                                        TestOp op, double c) {
  AUSDB_RETURN_NOT_OK(ValidateStats(x));
  AUSDB_RETURN_NOT_OK(ValidateStats(y));
  const double nx = static_cast<double>(x.n);
  const double ny = static_cast<double>(y.n);
  const double vx = Sq(x.stddev) / nx;
  const double vy = Sq(y.stddev) / ny;
  const double se = std::sqrt(vx + vy);
  if (se == 0.0) {
    const double diff = x.mean - y.mean;
    const bool h1_holds = (op == TestOp::kGreater && diff > c) ||
                          (op == TestOp::kLess && diff < c) ||
                          (op == TestOp::kNotEqual && diff != c);
    return h1_holds ? 0.0 : 1.0;
  }
  const double statistic = (x.mean - y.mean - c) / se;
  double dof = 0.0;
  if (x.n < accuracy::kSmallSampleThreshold ||
      y.n < accuracy::kSmallSampleThreshold) {
    // Welch-Satterthwaite approximation.
    dof = Sq(vx + vy) /
          (Sq(vx) / (nx - 1.0) + Sq(vy) / (ny - 1.0));
  }
  return PValueFor(op, statistic, dof);
}

Result<bool> MeanDifferenceTest(const SampleStatistics& x,
                                const SampleStatistics& y, TestOp op,
                                double c, double alpha) {
  AUSDB_RETURN_NOT_OK(ValidateAlpha(alpha));
  AUSDB_ASSIGN_OR_RETURN(double p, MeanDifferenceTestPValue(x, y, op, c));
  return p <= alpha;
}

}  // namespace hypothesis
}  // namespace ausdb
