#ifndef AUSDB_HYPOTHESIS_COUPLED_TESTS_H_
#define AUSDB_HYPOTHESIS_COUPLED_TESTS_H_

#include <functional>

#include "src/common/result.h"
#include "src/dist/random_var.h"
#include "src/hypothesis/significance_predicates.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

/// A hypothesis test parameterized by the alternative's operator and the
/// significance level; returns true iff H0 is rejected (H1 accepted).
/// This is the `P.test` of the paper's COUPLED-TESTS algorithm.
using TestRunner = std::function<Result<bool>(TestOp op, double alpha)>;

/// \brief The paper's Algorithm COUPLED-TESTS (Section IV-C).
///
/// Runs the original test T1 and its inverse T2 so that both error rates
/// are controlled (Theorem 3): false positives by `alpha1`, false
/// negatives by `alpha2`. When the original operator is '<>', both
/// one-sided tests run at alpha1/2, no FALSE is ever returned, and
/// accepting either side yields TRUE. Otherwise T1 keeps `op` at alpha1
/// and T2 uses the inverse operator at alpha2; T1 accepting yields TRUE,
/// T2 accepting yields FALSE, and neither yields UNSURE.
Result<TestOutcome> CoupledTests(const TestRunner& test, TestOp op,
                                 double alpha1, double alpha2);

/// mTest with coupled tests: mTest(X, op, c, alpha1, alpha2).
Result<TestOutcome> CoupledMTest(const dist::RandomVar& x, TestOp op,
                                 double c, double alpha1, double alpha2);

/// mdTest with coupled tests.
Result<TestOutcome> CoupledMdTest(const dist::RandomVar& x,
                                  const dist::RandomVar& y, TestOp op,
                                  double c, double alpha1, double alpha2);

/// pTest with coupled tests: pTest(pred, tau, alpha1, alpha2). The
/// original alternative is Pr[pred] > tau (as in the paper); the coupled
/// inverse is Pr[pred] < tau.
Result<TestOutcome> CoupledPTest(const dist::RandomVar& x,
                                 const ValuePredicate& pred, double tau,
                                 double alpha1, double alpha2);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_COUPLED_TESTS_H_
