#ifndef AUSDB_HYPOTHESIS_POWER_H_
#define AUSDB_HYPOTHESIS_POWER_H_

#include <cstddef>
#include <functional>

#include "src/common/result.h"
#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

/// \brief Empirical estimate of the power (and companion rates) of a
/// three-state significance predicate.
///
/// Power gamma = Pr[return TRUE | H1 true] (paper Section IV-C, "Power of
/// Coupled Tests"); for coupled tests the UNSURE rate is its complement's
/// main component, so both are reported.
struct PowerEstimate {
  size_t trials = 0;
  size_t true_count = 0;
  size_t false_count = 0;
  size_t unsure_count = 0;

  double Power() const {
    return trials == 0
               ? 0.0
               : static_cast<double>(true_count) /
                     static_cast<double>(trials);
  }
  double FalseRate() const {
    return trials == 0
               ? 0.0
               : static_cast<double>(false_count) /
                     static_cast<double>(trials);
  }
  double UnsureRate() const {
    return trials == 0
               ? 0.0
               : static_cast<double>(unsure_count) /
                     static_cast<double>(trials);
  }
};

/// \brief Runs `run_once` (one fresh-sample predicate evaluation) `trials`
/// times and tallies the outcomes.
PowerEstimate EstimatePower(size_t trials,
                            const std::function<TestOutcome()>& run_once);

/// \brief Closed-form power function gamma(mu) of the single mean test
/// (normal approximation with known sigma): the probability the test
/// accepts H1 "E(X) op c" when the true mean is `mu_true`.
///
/// For op = '>' this is 1 - Phi(z_alpha - (mu - c) / (sigma/sqrt(n)));
/// '<' mirrors it and '<>' sums both tails at alpha/2. Used to sanity-
/// check the empirical power sweeps (Figures 5(g)/(h)) and for sample-
/// size planning. Requires sigma > 0, n >= 1, alpha in (0,1).
Result<double> AnalyticalMeanTestPower(double mu_true, double sigma,
                                       size_t n, double c, double alpha,
                                       TestOp op);

/// \brief Smallest sample size whose analytical power reaches
/// `target_power` for the given effect, by bisection over n. Fails with
/// OutOfRange if even n = max_n falls short.
Result<size_t> RequiredSampleSize(double mu_true, double sigma, double c,
                                  double alpha, TestOp op,
                                  double target_power,
                                  size_t max_n = 1u << 24);

}  // namespace hypothesis
}  // namespace ausdb

#endif  // AUSDB_HYPOTHESIS_POWER_H_
