#include "src/hypothesis/test_types.h"

namespace ausdb {
namespace hypothesis {

std::string_view TestOpToString(TestOp op) {
  switch (op) {
    case TestOp::kLess:
      return "<";
    case TestOp::kGreater:
      return ">";
    case TestOp::kNotEqual:
      return "<>";
  }
  return "?";
}

std::string_view TestOutcomeToString(TestOutcome outcome) {
  switch (outcome) {
    case TestOutcome::kTrue:
      return "TRUE";
    case TestOutcome::kFalse:
      return "FALSE";
    case TestOutcome::kUnsure:
      return "UNSURE";
  }
  return "?";
}

TestOp InverseOp(TestOp op) {
  switch (op) {
    case TestOp::kLess:
      return TestOp::kGreater;
    case TestOp::kGreater:
      return TestOp::kLess;
    case TestOp::kNotEqual:
      return TestOp::kNotEqual;
  }
  return TestOp::kNotEqual;
}

}  // namespace hypothesis
}  // namespace ausdb
