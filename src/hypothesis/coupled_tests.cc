#include "src/hypothesis/coupled_tests.h"

namespace ausdb {
namespace hypothesis {

Result<TestOutcome> CoupledTests(const TestRunner& test, TestOp op,
                                 double alpha1, double alpha2) {
  if (!(alpha1 > 0.0 && alpha1 < 1.0) || !(alpha2 > 0.0 && alpha2 < 1.0)) {
    return Status::InvalidArgument(
        "coupled-tests error rates must be in (0,1)");
  }

  TestOp op1, op2;
  double a1, a2;
  if (op == TestOp::kNotEqual) {
    // Lines 3-7: split the two-sided alternative into two one-sided tests
    // sharing the alpha1 budget; the union bound gives Theorem 3's FP
    // bound, and no FALSE is returned so the FN rate is 0.
    op1 = TestOp::kLess;
    op2 = TestOp::kGreater;
    a1 = alpha1 / 2.0;
    a2 = alpha1 / 2.0;
  } else {
    // Lines 9-11: T2 is the inverse test; its false positives are the
    // original predicate's false negatives.
    op1 = op;
    op2 = InverseOp(op);
    a1 = alpha1;
    a2 = alpha2;
  }

  AUSDB_ASSIGN_OR_RETURN(bool t1, test(op1, a1));  // line 13
  if (t1) return TestOutcome::kTrue;               // lines 14-15
  AUSDB_ASSIGN_OR_RETURN(bool t2, test(op2, a2));  // line 17
  if (t2) {
    // Line 19: for '<>' the other side accepting still confirms H1.
    return op == TestOp::kNotEqual ? TestOutcome::kTrue
                                   : TestOutcome::kFalse;
  }
  return TestOutcome::kUnsure;  // line 21
}

Result<TestOutcome> CoupledMTest(const dist::RandomVar& x, TestOp op,
                                 double c, double alpha1, double alpha2) {
  AUSDB_ASSIGN_OR_RETURN(SampleStatistics s, StatisticsOf(x));
  return CoupledTests(
      [&s, c](TestOp test_op, double alpha) {
        return MeanTest(s, test_op, c, alpha);
      },
      op, alpha1, alpha2);
}

Result<TestOutcome> CoupledMdTest(const dist::RandomVar& x,
                                  const dist::RandomVar& y, TestOp op,
                                  double c, double alpha1, double alpha2) {
  AUSDB_ASSIGN_OR_RETURN(SampleStatistics sx, StatisticsOf(x));
  AUSDB_ASSIGN_OR_RETURN(SampleStatistics sy, StatisticsOf(y));
  return CoupledTests(
      [&sx, &sy, c](TestOp test_op, double alpha) {
        return MeanDifferenceTest(sx, sy, test_op, c, alpha);
      },
      op, alpha1, alpha2);
}

Result<TestOutcome> CoupledPTest(const dist::RandomVar& x,
                                 const ValuePredicate& pred, double tau,
                                 double alpha1, double alpha2) {
  if (x.is_certain()) {
    return Status::InsufficientData(
        "pTest needs an uncertain field with sample provenance");
  }
  const double p_hat = PredicateProbability(*x.distribution(), pred);
  const size_t n = x.sample_size();
  return CoupledTests(
      [p_hat, n, tau](TestOp test_op, double alpha) {
        return ProportionTest(p_hat, n, test_op, tau, alpha);
      },
      TestOp::kGreater, alpha1, alpha2);
}

}  // namespace hypothesis
}  // namespace ausdb
