#include "src/hypothesis/significance_predicates.h"

namespace ausdb {
namespace hypothesis {

double PredicateProbability(const dist::Distribution& d,
                            const ValuePredicate& pred) {
  switch (pred.cmp) {
    case CompareOp::kLt:
      return d.ProbLess(pred.value);
    case CompareOp::kLe:
      return d.Cdf(pred.value);
    case CompareOp::kGt:
      return d.ProbGreater(pred.value);
    case CompareOp::kGe:
      return 1.0 - d.ProbLess(pred.value);
  }
  return 0.0;
}

Result<SampleStatistics> StatisticsOf(const dist::RandomVar& x) {
  if (x.is_certain()) {
    return Status::InsufficientData(
        "significance predicates need an uncertain field with sample "
        "provenance; got a deterministic value");
  }
  SampleStatistics s;
  s.mean = x.Mean();
  s.stddev = x.StdDev();
  s.n = x.sample_size();
  if (s.n < 2) {
    return Status::InsufficientData(
        "significance predicates require d.f. sample size >= 2; got " +
        std::to_string(s.n));
  }
  return s;
}

Result<bool> MTest(const dist::RandomVar& x, TestOp op, double c,
                   double alpha) {
  AUSDB_ASSIGN_OR_RETURN(SampleStatistics s, StatisticsOf(x));
  return MeanTest(s, op, c, alpha);
}

Result<bool> MdTest(const dist::RandomVar& x, const dist::RandomVar& y,
                    TestOp op, double c, double alpha) {
  AUSDB_ASSIGN_OR_RETURN(SampleStatistics sx, StatisticsOf(x));
  AUSDB_ASSIGN_OR_RETURN(SampleStatistics sy, StatisticsOf(y));
  return MeanDifferenceTest(sx, sy, op, c, alpha);
}

Result<bool> PTest(const dist::RandomVar& x, const ValuePredicate& pred,
                   double tau, double alpha, TestOp op) {
  if (x.is_certain()) {
    return Status::InsufficientData(
        "pTest needs an uncertain field with sample provenance");
  }
  const double p_hat = PredicateProbability(*x.distribution(), pred);
  return ProportionTest(p_hat, x.sample_size(), op, tau, alpha);
}

}  // namespace hypothesis
}  // namespace ausdb
