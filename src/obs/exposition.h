#ifndef AUSDB_OBS_EXPOSITION_H_
#define AUSDB_OBS_EXPOSITION_H_

#include <string>

#include "src/obs/metrics.h"

namespace ausdb {
namespace obs {

/// \brief Snapshot serializers. Both formats are a stable contract:
/// metric order is (name, labels) lexicographic, numbers render via
/// shortest-round-trip formatting, and label values are escaped — the
/// golden-file test (tests/obs_exposition_test.cc) pins the exact bytes
/// so drift cannot ship silently.

/// Prometheus text exposition format (version 0.0.4): one `# HELP` /
/// `# TYPE` header per family, histograms expanded into cumulative
/// `_bucket{le=...}` series plus `_sum` / `_count`. Label values escape
/// backslash, double-quote and newline per the format spec.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// JSON document: {"counters": [...], "gauges": [...],
/// "histograms": [...]} with per-sample name/labels/value(s); histogram
/// buckets keep the raw (non-cumulative) per-bucket counts plus an
/// explicit upper bound list ending in "+Inf".
std::string ToJson(const MetricsSnapshot& snapshot);

/// Shortest round-trip decimal rendering of `v` ("0.25", "1e-06", ...);
/// integral values render without a fractional part. Shared by both
/// writers so the two formats can never disagree on a number.
std::string FormatMetricValue(double v);

/// Escapes `\`, `"` and newline for a Prometheus label value.
std::string EscapeLabelValue(const std::string& value);

/// Quoted JSON string rendering of `s` (quote, backslash, newline and
/// control characters escaped; other bytes pass through, so UTF-8
/// sequences survive verbatim). Shared by the metrics JSON writer and
/// the event-journal exposition so the two can never disagree on
/// escaping.
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace ausdb

#endif  // AUSDB_OBS_EXPOSITION_H_
