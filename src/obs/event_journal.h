#ifndef AUSDB_OBS_EVENT_JOURNAL_H_
#define AUSDB_OBS_EVENT_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ausdb {
namespace obs {

/// \brief What kind of consequential accuracy decision an event records.
///
/// Every entry corresponds to a decision the engine used to make
/// invisibly: the governor shedding or restoring precision, the breaker
/// quarantining a plan, the cost model re-choosing an annotation method,
/// drift quarantining a learned model, a late tuple forcing a window
/// revision, or recovery rewriting pipeline state. The journal is how a
/// query-facing surface (EXPLAIN ANALYZE, a future server) answers "why
/// did my intervals widen?".
enum class EventType {
  kRungEscalation,   ///< governor shed one precision rung
  kRungRelaxation,   ///< governor restored one precision rung
  kBreakerTrip,      ///< circuit breaker opened (persistent overload)
  kBreakerReclose,   ///< breaker cooldown elapsed; half-open re-admit
  kCostRechoice,     ///< cost model put a new MethodSpec in force
  kDriftQuarantine,  ///< drift detector latched: learned model is stale
  kDriftRelearn,     ///< stale reference discarded and relearned
  kLateRevision,     ///< late tuple re-emitted already-emitted windows
  kCheckpoint,       ///< recovery manager wrote a checkpoint generation
  kRestore,          ///< recovery manager restored a generation
};

/// Stable lower_snake_case name used in the JSON exposition.
const char* EventTypeName(EventType type);

/// \brief One journal entry. `epoch` is logical time — a pull-count
/// epoch, an input-tuple count, a checkpoint generation — never wall
/// clock, so two identical runs journal identical bytes. `scope` names
/// the emitting component ("governor", "cost_model", ...); `detail` is a
/// canonical byte-stable rendering of the decision (rung transition,
/// MethodSpec::ToString(), ...).
struct EventRecord {
  uint64_t seq = 0;  ///< journal-assigned monotonic sequence number
  uint64_t epoch = 0;
  EventType type = EventType::kRungEscalation;
  std::string scope;
  std::string detail;

  bool operator==(const EventRecord& other) const = default;
};

/// \brief Fixed-capacity structured event ring — the flight recorder of
/// accuracy decisions, sibling of TraceBuffer (which records *spans* of
/// wall time; this records *decisions* on logical time).
///
/// When full, the oldest event is overwritten and `dropped()` advances:
/// overflow is loud, never silent. Thread-safe; Append is one short
/// critical section and only ever fires on decision boundaries (epoch
/// ticks, breaker trips, revisions), far off the per-tuple hot path.
/// Per the obs contract the journal is write-only for the engine:
/// nothing on the data path ever reads it back, so journaling cannot
/// perturb delivered output.
class EventJournal {
 public:
  explicit EventJournal(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends one event; assigns its sequence number.
  void Append(EventType type, uint64_t epoch, std::string scope,
              std::string detail);

  /// Events currently retained, oldest first.
  std::vector<EventRecord> Events() const;

  /// Total events ever appended (>= Events().size() once wrapped).
  uint64_t recorded() const;

  /// Events lost to ring overflow (recorded() - retained).
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

  /// \brief Byte-deterministic JSON exposition, the journal's sibling of
  /// ToPrometheusText/ToJson:
  ///   {"capacity":N,"recorded":N,"dropped":N,"events":[
  ///     {"seq":0,"epoch":3,"type":"rung_escalation",
  ///      "scope":"governor","detail":"rung 0 -> 1"},...]}
  /// Two runs that made the same decisions expose identical bytes —
  /// the EXPLAIN ANALYZE determinism harness compares this string
  /// across thread counts, prefetch depths, and metrics settings.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<EventRecord> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

}  // namespace obs
}  // namespace ausdb

#endif  // AUSDB_OBS_EVENT_JOURNAL_H_
