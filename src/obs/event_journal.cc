#include "src/obs/event_journal.h"

#include <utility>

#include "src/obs/exposition.h"

namespace ausdb {
namespace obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRungEscalation:
      return "rung_escalation";
    case EventType::kRungRelaxation:
      return "rung_relaxation";
    case EventType::kBreakerTrip:
      return "breaker_trip";
    case EventType::kBreakerReclose:
      return "breaker_reclose";
    case EventType::kCostRechoice:
      return "cost_rechoice";
    case EventType::kDriftQuarantine:
      return "drift_quarantine";
    case EventType::kDriftRelearn:
      return "drift_relearn";
    case EventType::kLateRevision:
      return "late_revision";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kRestore:
      return "restore";
  }
  return "unknown";
}

void EventJournal::Append(EventType type, uint64_t epoch, std::string scope,
                          std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  EventRecord record{recorded_, epoch, type, std::move(scope),
                     std::move(detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<EventRecord> EventJournal::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t EventJournal::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::string EventJournal::ToJson() const {
  // One coherent snapshot under the lock, then render outside it.
  std::vector<EventRecord> events;
  uint64_t recorded = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded = recorded_;
    events.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      events = ring_;
    } else {
      for (size_t i = 0; i < ring_.size(); ++i) {
        events.push_back(ring_[(next_ + i) % capacity_]);
      }
    }
  }
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"recorded\":" + std::to_string(recorded) +
                    ",\"dropped\":" +
                    std::to_string(recorded - events.size()) +
                    ",\"events\":[";
  bool first = true;
  for (const EventRecord& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"epoch\":" + std::to_string(e.epoch) + ",\"type\":\"" +
           EventTypeName(e.type) +
           "\",\"scope\":" + JsonEscape(e.scope) +
           ",\"detail\":" + JsonEscape(e.detail) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace ausdb
