#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ausdb {
namespace obs {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(boundaries_.size() + 1) {
  AUSDB_CHECK(!boundaries_.empty()) << "histogram needs >= 1 boundary";
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    AUSDB_CHECK_LT(boundaries_[i - 1], boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
}

void Histogram::Record(double value) {
  // Binary search for the first boundary >= value; values above every
  // boundary land in the trailing overflow bucket.
  size_t lo = 0;
  size_t hi = boundaries_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (value <= boundaries_[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo].fetch_add(1, std::memory_order_relaxed);
  // CAS loop rather than atomic<double>::fetch_add for toolchain
  // portability; retries make concurrent adds lossless.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> DefaultLatencySecondsBoundaries() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<double> DefaultSizeBytesBoundaries() {
  return {64.0, 2048.0, 65536.0, 2097152.0, 67108864.0};
}

std::vector<double> DefaultEventTimeLagBoundaries() {
  return {1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0};
}

std::vector<double> DefaultHalfWidthBoundaries() {
  return {1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 0.5, 1.0, 5.0, 10.0,
          50.0, 100.0};
}

namespace {

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels,
                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) family_help_.try_emplace(name, help);
  auto [it, inserted] = counters_.try_emplace(
      MetricKey{name, SortedLabels(labels)});
  if (inserted) it->second.metric = std::make_unique<Counter>();
  return it->second.metric.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const Labels& labels,
                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) family_help_.try_emplace(name, help);
  auto [it, inserted] =
      gauges_.try_emplace(MetricKey{name, SortedLabels(labels)});
  if (inserted) it->second.metric = std::make_unique<Gauge>();
  return it->second.metric.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const Labels& labels,
                                        std::vector<double> boundaries,
                                        const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) family_help_.try_emplace(name, help);
  auto [it, inserted] =
      histograms_.try_emplace(MetricKey{name, SortedLabels(labels)});
  if (inserted) {
    it->second.metric = std::make_unique<Histogram>(std::move(boundaries));
  }
  return it->second.metric.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  const auto help_of = [this](const std::string& name) {
    const auto it = family_help_.find(name);
    return it == family_help_.end() ? std::string() : it->second;
  };
  snap.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    snap.counters.push_back(
        {key, help_of(key.name), entry.metric->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    snap.gauges.push_back({key, help_of(key.name), entry.metric->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    HistogramSample s;
    s.key = key;
    s.help = help_of(key.name);
    s.boundaries = entry.metric->boundaries();
    s.buckets = entry.metric->BucketCounts();
    s.sum = entry.metric->Sum();
    // Count derives from the captured buckets, so the invariant
    // `sum(buckets) == count` holds within this snapshot by
    // construction — even while other threads keep recording.
    s.count = 0;
    for (uint64_t b : s.buckets) s.count += b;
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

}  // namespace obs
}  // namespace ausdb
