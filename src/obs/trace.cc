#include "src/obs/trace.h"

#include <utility>

namespace ausdb {
namespace obs {

void TraceBuffer::Record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<SpanRecord> TraceBuffer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TraceBuffer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

TraceSnapshot TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot snap;
  snap.recorded = recorded_;
  snap.dropped = recorded_ - ring_.size();
  snap.capacity = capacity_;
  snap.spans.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    snap.spans = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      snap.spans.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return snap;
}

}  // namespace obs
}  // namespace ausdb
