#ifndef AUSDB_OBS_CLOCK_H_
#define AUSDB_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace ausdb {
namespace obs {

/// \brief Injectable monotonic time source for every observability
/// measurement (latency histograms, trace spans, throughput meters).
///
/// Instrumentation must never make delivered output depend on wall
/// clock — the determinism contract says tuple sequences are
/// bit-identical with metrics on or off — so timing is *read through*
/// this interface and only ever *written into* metrics. Production code
/// uses SteadyClock (std::chrono::steady_clock); tests use FakeClock to
/// make recorded durations exact and reproducible.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() const = 0;
};

/// Production clock: std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Process-wide instance for call sites that take a `Clock*` default.
  static SteadyClock* Instance();
};

/// Test clock: time advances only when told to, so recorded durations
/// are exact constants in assertions.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(uint64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  uint64_t NowNanos() const override { return now_nanos_; }

  void AdvanceNanos(uint64_t delta) { now_nanos_ += delta; }
  void AdvanceSeconds(double seconds) {
    now_nanos_ += static_cast<uint64_t>(seconds * 1e9);
  }
  void SetNanos(uint64_t nanos) { now_nanos_ = nanos; }

 private:
  uint64_t now_nanos_;
};

/// Seconds between two NowNanos() readings.
inline double NanosToSeconds(uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-9;
}

}  // namespace obs
}  // namespace ausdb

#endif  // AUSDB_OBS_CLOCK_H_
