#include "src/obs/exposition.h"

#include <charconv>
#include <cstdio>

#include "src/common/logging.h"

namespace ausdb {
namespace obs {

std::string FormatMetricValue(double v) {
  char buf[64];
  // std::to_chars with no precision yields the shortest decimal string
  // that round-trips — deterministic across platforms, no locale.
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  AUSDB_CHECK(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

namespace {

/// `{key="value",...}` or "" when the sample has no labels. `extra` is
/// appended after the declared labels (the histogram `le` label).
std::string LabelBlock(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& l : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += l.key + "=\"" + EscapeLabelValue(l.value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

void FamilyHeader(std::string& out, const std::string& name,
                  const std::string& help, const char* type,
                  std::string& last_family) {
  if (name == last_family) return;
  last_family = name;
  if (!help.empty()) {
    out += "# HELP " + name + " " + help + "\n";
  }
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& l : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += JsonEscape(l.key) + ":" + JsonEscape(l.value);
  }
  out.push_back('}');
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& s : snapshot.counters) {
    FamilyHeader(out, s.key.name, s.help, "counter", last_family);
    out += s.key.name + LabelBlock(s.key.labels) + " " +
           std::to_string(s.value) + "\n";
  }
  for (const auto& s : snapshot.gauges) {
    FamilyHeader(out, s.key.name, s.help, "gauge", last_family);
    out += s.key.name + LabelBlock(s.key.labels) + " " +
           std::to_string(s.value) + "\n";
  }
  for (const auto& s : snapshot.histograms) {
    FamilyHeader(out, s.key.name, s.help, "histogram", last_family);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      cumulative += s.buckets[i];
      const std::string le =
          i < s.boundaries.size() ? FormatMetricValue(s.boundaries[i])
                                  : std::string("+Inf");
      out += s.key.name + "_bucket" +
             LabelBlock(s.key.labels, "le=\"" + le + "\"") + " " +
             std::to_string(cumulative) + "\n";
    }
    out += s.key.name + "_sum" + LabelBlock(s.key.labels) + " " +
           FormatMetricValue(s.sum) + "\n";
    out += s.key.name + "_count" + LabelBlock(s.key.labels) + " " +
           std::to_string(s.count) + "\n";
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& s : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":" + JsonEscape(s.key.name) +
           ",\"labels\":" + JsonLabels(s.key.labels) +
           ",\"value\":" + std::to_string(s.value) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& s : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":" + JsonEscape(s.key.name) +
           ",\"labels\":" + JsonLabels(s.key.labels) +
           ",\"value\":" + std::to_string(s.value) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& s : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":" + JsonEscape(s.key.name) +
           ",\"labels\":" + JsonLabels(s.key.labels) + ",\"le\":[";
    for (size_t i = 0; i < s.boundaries.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += JsonEscape(FormatMetricValue(s.boundaries[i]));
    }
    if (!s.boundaries.empty()) out.push_back(',');
    out += "\"+Inf\"],\"buckets\":[";
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(s.buckets[i]);
    }
    out += "],\"sum\":" + FormatMetricValue(s.sum) +
           ",\"count\":" + std::to_string(s.count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace ausdb
