#ifndef AUSDB_OBS_TRACE_H_
#define AUSDB_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/clock.h"

namespace ausdb {
namespace obs {

/// One completed span: a named interval on the injected clock's
/// timeline. Spans are pure observations — nothing in the engine ever
/// reads them back.
struct SpanRecord {
  std::string name;
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;

  double DurationSeconds() const {
    return NanosToSeconds(end_nanos - start_nanos);
  }
};

/// One coherent view of a TraceBuffer: the retained spans plus the
/// overflow accounting that says how much history the ring has already
/// shed. `dropped` makes ring overflow loud — a dashboard that only
/// looked at Spans() would silently under-report a busy pipeline.
struct TraceSnapshot {
  std::vector<SpanRecord> spans;  ///< oldest first
  uint64_t recorded = 0;          ///< total spans ever recorded
  uint64_t dropped = 0;           ///< spans lost to ring overflow
  size_t capacity = 0;
};

/// \brief Bounded in-memory span sink. When full, the oldest span is
/// overwritten (a flight recorder, not a log): tracing a pipeline that
/// runs for days must cost constant memory. Thread-safe; Record is one
/// short critical section, far off the per-tuple hot path (spans wrap
/// checkpoint writes, restores, retry sequences — not Next()).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Record(SpanRecord span);

  /// Spans currently retained, oldest first.
  std::vector<SpanRecord> Spans() const;

  /// Total spans ever recorded (>= Spans().size() once wrapped).
  uint64_t recorded() const;

  /// Spans lost to ring overflow (recorded() - retained).
  uint64_t dropped() const;

  /// Spans + overflow counters read under one lock acquisition, so the
  /// numbers are mutually consistent even while writers are appending.
  TraceSnapshot Snapshot() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

/// \brief RAII span: records [construction, destruction) into `buffer`
/// using `clock`. Null buffer/clock disables recording entirely — the
/// disabled form is two pointer checks.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buffer, const Clock* clock, std::string name)
      : buffer_(buffer), clock_(clock), name_(std::move(name)) {
    if (buffer_ != nullptr && clock_ != nullptr) {
      start_nanos_ = clock_->NowNanos();
    }
  }

  ~ScopedSpan() {
    if (buffer_ != nullptr && clock_ != nullptr) {
      buffer_->Record({std::move(name_), start_nanos_, clock_->NowNanos()});
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const Clock* clock_;
  std::string name_;
  uint64_t start_nanos_ = 0;
};

}  // namespace obs
}  // namespace ausdb

#endif  // AUSDB_OBS_TRACE_H_
