#include "src/obs/clock.h"

namespace ausdb {
namespace obs {

SteadyClock* SteadyClock::Instance() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace obs
}  // namespace ausdb
