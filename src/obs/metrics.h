#ifndef AUSDB_OBS_METRICS_H_
#define AUSDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ausdb {
namespace obs {

/// \brief Lock-cheap metrics substrate.
///
/// Design rules, enforced across every instrumented module:
///  - The data path only ever *writes* metrics (atomic increments); it
///    never reads them back to make decisions, so instrumentation cannot
///    perturb delivered output. Determinism stays bit-exact with metrics
///    on or off.
///  - Registration (name lookup, allocation) takes a mutex and happens
///    at pipeline construction time; the per-tuple hot path is a single
///    relaxed atomic RMW on a pre-resolved pointer.
///  - Naming convention: `ausdb_<module>_<name>_<unit>` with `_total`
///    for monotonic counters (Prometheus idiom), e.g.
///    `ausdb_engine_tuples_total`, `ausdb_recovery_checkpoint_bytes_total`,
///    `ausdb_stream_prefetch_ring_depth`.

/// One `key="value"` metric label.
struct Label {
  std::string key;
  std::string value;

  bool operator==(const Label& other) const = default;
  auto operator<=>(const Label& other) const = default;
};

using Labels = std::vector<Label>;

/// \brief Monotonic counter. Relaxed atomic increments: concurrent
/// writers lose nothing (fetch_add is a read-modify-write), and metric
/// reads need no ordering relative to data-path writes.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (queue depth, backlog, last restored
/// generation). Set/Add/Sub; signed so transient dips below a baseline
/// are representable.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-boundary latency/size histogram with atomic bucket
/// increments.
///
/// Bucket semantics follow Prometheus `le` (cumulative-at-exposition):
/// internally bucket 0 counts values <= boundary[0] (the underflow
/// bucket), bucket i counts boundary[i-1] < v <= boundary[i], and the
/// final bucket counts v > boundary.back() (overflow / +Inf). The total
/// count is derived from the buckets at snapshot time, never stored
/// separately — that is what makes `sum of buckets == count` hold for
/// every snapshot, even one taken mid-storm of concurrent Record()s.
class Histogram {
 public:
  /// `boundaries` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> boundaries);

  /// Records one observation: one relaxed bucket increment plus one
  /// relaxed fetch_add into the value sum.
  void Record(double value);

  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Per-bucket counts, size boundaries().size() + 1 (last is overflow).
  std::vector<uint64_t> BucketCounts() const;

  /// Sum of recorded values (for Prometheus `_sum`).
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Total observations (sum of BucketCounts()).
  uint64_t Count() const;

 private:
  const std::vector<double> boundaries_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Default latency boundaries (seconds): 1us .. 10s, log-spaced-ish.
std::vector<double> DefaultLatencySecondsBoundaries();

/// Default size boundaries (bytes): 64B .. 64MB, powers of 32.
std::vector<double> DefaultSizeBytesBoundaries();

/// Default event-time lag boundaries (timestamp units, not wall clock):
/// 1e-3 .. 1e3, decades. Used by the reorder buffer's arrival-lag
/// histogram, whose unit is whatever the stream's timestamp column uses.
std::vector<double> DefaultEventTimeLagBoundaries();

/// Default delivered-CI half-width boundaries (value units): 1e-4 .. 100,
/// half-decades. Used by the accuracy ledger's per-query half-width
/// histogram, compared against the declared `WITH ACCURACY` epsilon.
std::vector<double> DefaultHalfWidthBoundaries();

/// One metric's identity inside a registry: name plus sorted labels.
struct MetricKey {
  std::string name;
  Labels labels;

  bool operator==(const MetricKey& other) const = default;
  auto operator<=>(const MetricKey& other) const = default;
};

/// Point-in-time samples, sorted by (name, labels) — the stable order
/// the exposition writers rely on.
struct CounterSample {
  MetricKey key;
  std::string help;
  uint64_t value = 0;
};

struct GaugeSample {
  MetricKey key;
  std::string help;
  int64_t value = 0;
};

struct HistogramSample {
  MetricKey key;
  std::string help;
  std::vector<double> boundaries;
  /// boundaries.size() + 1 entries; last is the overflow (+Inf) bucket.
  std::vector<uint64_t> buckets;
  double sum = 0.0;
  /// Always equals the sum of `buckets`.
  uint64_t count = 0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// \brief Process- or pipeline-scoped registry owning every metric.
///
/// GetCounter/GetGauge/GetHistogram resolve (name, labels) to a stable
/// pointer, creating the metric on first use; returned pointers live as
/// long as the registry and are what instrumented components cache at
/// construction time. Lookup takes the registry mutex; the returned
/// objects are lock-free. Snapshot() copies every sample under the same
/// mutex (coherent membership, relaxed values).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// `help` is recorded on first registration of `name` and reused for
  /// every labeled instance of the same family.
  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");

  /// `boundaries` is consulted only when the (name, labels) instance is
  /// created; later lookups of an existing instance ignore it.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> boundaries =
                              DefaultLatencySecondsBoundaries(),
                          const std::string& help = "");

  /// Point-in-time copy of every registered metric, deterministically
  /// sorted by (name, labels).
  MetricsSnapshot Snapshot() const;

 private:
  template <typename M>
  struct Entry {
    std::string help;
    std::unique_ptr<M> metric;
  };

  mutable std::mutex mu_;
  std::map<MetricKey, Entry<Counter>> counters_;
  std::map<MetricKey, Entry<Gauge>> gauges_;
  std::map<MetricKey, Entry<Histogram>> histograms_;
  /// First-registration help text per metric family name.
  std::map<std::string, std::string> family_help_;
};

}  // namespace obs
}  // namespace ausdb

#endif  // AUSDB_OBS_METRICS_H_
