#include "src/govern/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/accuracy/mean_variance_ci.h"
#include "src/stats/quantiles.h"

namespace ausdb {
namespace govern {

std::string MethodSpec::ToString() const {
  std::string out =
      is_bootstrap()
          ? "bootstrap(r=" + std::to_string(bootstrap_resamples) + ")"
          : "analytical";
  out += "/merge" + std::to_string(histogram_merge);
  if (sample_scale != 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ";scale=%.4f", sample_scale);
    out += buf;
  }
  return out;
}

Status AccuracyTarget::Validate() const {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    return Status::InvalidArgument(
        "accuracy-target confidence must be in (0, 1)");
  }
  if (epsilon < 0.0 || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "accuracy-target epsilon must be finite and >= 0");
  }
  if (cost_budget < 0.0 || !std::isfinite(cost_budget)) {
    return Status::InvalidArgument(
        "accuracy-target cost budget must be finite and >= 0");
  }
  if (epsilon == 0.0 && cost_budget == 0.0) {
    return Status::InvalidArgument(
        "an accuracy target needs an epsilon or a cost budget");
  }
  return Status::OK();
}

Status CostTable::Validate() const {
  if (!(analytical_base > 0.0) || !(bootstrap_base > 0.0) ||
      !(per_bin >= 0.0) || !(per_resample_value > 0.0)) {
    return Status::InvalidArgument(
        "cost-table coefficients must be positive");
  }
  return Status::OK();
}

double PredictHalfWidth(const MethodSpec& spec, const WindowObservation& obs,
                        double confidence) {
  const size_t n = std::max<size_t>(2, obs.cardinality);
  const double s = std::max(obs.dispersion, 0.0);
  const double q = (1.0 - confidence) / 2.0;
  double half;
  if (spec.is_bootstrap()) {
    const double r =
        static_cast<double>(std::max<size_t>(2, spec.bootstrap_resamples));
    // Percentile interval over r d.f. resamples: z-width in the limit,
    // plus quantile noise decaying like 1/sqrt(r).
    half = stats::NormalUpperPercentile(q) * s /
           std::sqrt(static_cast<double>(n)) * (1.0 + 2.0 / std::sqrt(r));
  } else {
    const double crit =
        n < accuracy::kSmallSampleThreshold
            ? stats::StudentTUpperPercentile(q, static_cast<double>(n) - 1.0)
            : stats::NormalUpperPercentile(q);
    half = crit * s / std::sqrt(static_cast<double>(n));
  }
  // Histogram coarsening trades resolution for per-bin cost; account the
  // lost resolution as extra slack so tight targets force fine bins.
  if (obs.histogram_bins > 0 && spec.histogram_merge > 1) {
    half += s * static_cast<double>(spec.histogram_merge - 1) /
            static_cast<double>(obs.histogram_bins);
  }
  return half;
}

double PredictCost(const MethodSpec& spec, const WindowObservation& obs,
                   const CostTable& table) {
  const double bins =
      obs.histogram_bins == 0
          ? 0.0
          : std::ceil(static_cast<double>(obs.histogram_bins) /
                      static_cast<double>(std::max<size_t>(
                          1, spec.histogram_merge)));
  if (!spec.is_bootstrap()) {
    return table.analytical_base + table.per_bin * bins;
  }
  const double n = static_cast<double>(std::max<size_t>(2, obs.cardinality)) *
                   spec.sample_scale;
  const double r =
      static_cast<double>(std::max<size_t>(2, spec.bootstrap_resamples));
  return table.bootstrap_base + table.per_resample_value * n * r +
         table.per_bin * bins;
}

size_t MinConformingResamples(double confidence) {
  const double tail = std::max(1.0 - confidence,
                               std::numeric_limits<double>::epsilon());
  // Ten resamples beyond each percentile cut, i.e. r >= 20 / (1 - c).
  // The interior-quantile minimum alone (r >= 2 / (1 - c)) admits
  // percentile estimates so noisy they measurably undercover: the
  // conformance harness clocked r = 2/(1-c) at 0.80 empirical coverage
  // against a 0.90 target, and ten-per-tail is where the deficit drops
  // inside the harness's pre-registered tolerance. The 1e-9 slack keeps
  // the ceil at the mathematical bound when the tail is not exactly
  // representable (1 - 0.9 -> 20/tail = 200 + ulps).
  return static_cast<size_t>(std::ceil(20.0 / tail - 1e-9));
}

namespace {

/// Fixed enumeration order: analytical first (always cheapest under a
/// valid table), then bootstrap by ascending r; every method at every
/// merge factor, finest first. The order is part of the determinism
/// contract — ties resolve to the lowest index.
std::vector<MethodSpec> EnumerateCandidates(const AccuracyTarget& target,
                                            const ChooserOptions& options) {
  std::vector<size_t> merges = options.merge_candidates;
  if (merges.empty()) merges.push_back(1);
  std::sort(merges.begin(), merges.end());

  std::vector<size_t> resamples = options.resample_candidates;
  std::sort(resamples.begin(), resamples.end());
  const size_t r_min = MinConformingResamples(target.confidence);

  std::vector<MethodSpec> out;
  for (size_t merge : merges) {
    MethodSpec spec;
    spec.method = accuracy::AccuracyMethod::kAnalytical;
    spec.histogram_merge = std::max<size_t>(1, merge);
    out.push_back(spec);
  }
  for (size_t r : resamples) {
    if (r < r_min) continue;  // cannot conform at this confidence
    for (size_t merge : merges) {
      MethodSpec spec;
      spec.method = accuracy::AccuracyMethod::kBootstrap;
      spec.bootstrap_resamples = r;
      spec.histogram_merge = std::max<size_t>(1, merge);
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace

std::vector<MethodSpec> MethodChooser::SelectableSpecs(
    const AccuracyTarget& target, const ChooserOptions& options) {
  return EnumerateCandidates(target, options);
}

MethodSpec MethodChooser::Choose(const AccuracyTarget& target,
                                 const WindowObservation& obs,
                                 const ChooserOptions& options) {
  const std::vector<MethodSpec> candidates =
      EnumerateCandidates(target, options);

  // Budget-only targets (the latency-SLO form) flip the objective:
  // instead of the cheapest spec meeting epsilon, pick the most
  // accurate spec the budget affords.
  const bool accuracy_goal = target.epsilon == 0.0;

  const MethodSpec* best = nullptr;
  double best_cost = 0.0, best_half = 0.0;
  const MethodSpec* tightest = nullptr;
  double tightest_half = 0.0, tightest_cost = 0.0;
  const MethodSpec* cheapest = nullptr;
  double cheapest_cost = 0.0, cheapest_half = 0.0;

  for (const MethodSpec& spec : candidates) {
    const double half = PredictHalfWidth(spec, obs, target.confidence);
    const double cost = PredictCost(spec, obs, options.table);

    // Fallback tracks: the most accurate candidate regardless of cost
    // (cheapest among equally tight), and the cheapest regardless of
    // accuracy (tightest among equally cheap).
    if (tightest == nullptr || half < tightest_half ||
        (half == tightest_half && cost < tightest_cost)) {
      tightest = &spec;
      tightest_half = half;
      tightest_cost = cost;
    }
    if (cheapest == nullptr || cost < cheapest_cost ||
        (cost == cheapest_cost && half < cheapest_half)) {
      cheapest = &spec;
      cheapest_cost = cost;
      cheapest_half = half;
    }

    const bool feasible =
        (target.epsilon == 0.0 || half <= target.epsilon) &&
        (target.cost_budget == 0.0 || cost <= target.cost_budget);
    if (!feasible) continue;
    const bool better =
        best == nullptr ||
        (accuracy_goal
             ? (half < best_half || (half == best_half && cost < best_cost))
             : (cost < best_cost || (cost == best_cost && half < best_half)));
    if (better) {
      best = &spec;
      best_cost = cost;
      best_half = half;
    }
  }
  if (best != nullptr) return *best;
  // Nothing meets the target. An epsilon goal falls back to the best
  // interval the candidate set can produce — the engine never silently
  // serves a looser interval than the best it can afford. A budget-only
  // goal falls back the other way: the budget is unaffordable even by
  // the cheapest candidate, so overshoot it by the minimum possible.
  if (accuracy_goal) return cheapest != nullptr ? *cheapest : MethodSpec{};
  return tightest != nullptr ? *tightest : MethodSpec{};
}

MethodChooser::MethodChooser(ChooserOptions options)
    : options_(std::move(options)) {
  if (!options_.table.Validate().ok()) options_.table = CostTable::Default();
  if (options_.epoch_interval == 0) options_.epoch_interval = 256;
  estimate_ = options_.prior;
  // A default target that any valid candidate set satisfies: until
  // SetTarget, the chooser holds the cheapest candidate.
  target_.epsilon = std::numeric_limits<double>::max();
  target_.confidence = 0.9;
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"plan", options_.metrics_label}};
    m_decisions_ =
        options_.metrics->GetCounter("ausdb_cost_decisions_total", labels);
    m_recalibrations_ = options_.metrics->GetCounter(
        "ausdb_cost_recalibrations_total", labels);
    m_method_flips_ = options_.metrics->GetCounter(
        "ausdb_cost_method_flips_total", labels);
    m_selected_method_ =
        options_.metrics->GetGauge("ausdb_cost_selected_method", labels);
    m_selected_resamples_ =
        options_.metrics->GetGauge("ausdb_cost_selected_resamples", labels);
    m_predicted_cost_milli_ = options_.metrics->GetGauge(
        "ausdb_cost_predicted_cost_milliunits", labels);
    m_predicted_halfwidth_milli_ = options_.metrics->GetGauge(
        "ausdb_cost_predicted_halfwidth_milli", labels);
  }
  RecordDecision(Choose(target_, estimate_, options_));
}

Status MethodChooser::SetTarget(const AccuracyTarget& target) {
  AUSDB_RETURN_NOT_OK(target.Validate());
  target_ = target;
  RecordDecision(Choose(target_, estimate_, options_));
  return Status::OK();
}

void MethodChooser::RecordDecision(const MethodSpec& spec) {
  const bool first = decisions_.empty();
  const bool changed = first || !(decisions_.back().spec == spec);
  const accuracy::AccuracyMethod previous_method = current_.method;
  // Like the governor's transition log, only *changes* are recorded —
  // the log stays proportional to real decisions, not epochs.
  if (changed) {
    decisions_.push_back({epochs_, spec});
    if (options_.journal != nullptr) {
      options_.journal->Append(obs::EventType::kCostRechoice, epochs_,
                               "cost_model", spec.ToString());
    }
  }
  current_ = spec;
  if (m_decisions_ != nullptr) {
    m_decisions_->Increment();
    if (!first && changed && spec.method != previous_method) {
      m_method_flips_->Increment();
    }
    m_selected_method_->Set(spec.is_bootstrap() ? 1 : 0);
    m_selected_resamples_->Set(
        static_cast<int64_t>(spec.bootstrap_resamples));
    m_predicted_cost_milli_->Set(static_cast<int64_t>(
        1000.0 * PredictCost(spec, estimate_, options_.table)));
    m_predicted_halfwidth_milli_->Set(static_cast<int64_t>(
        1000.0 * PredictHalfWidth(spec, estimate_, target_.confidence)));
  }
}

void MethodChooser::Observe(const WindowObservation& obs) {
  ++observed_;
  ++acc_count_;
  acc_cardinality_ += static_cast<double>(obs.cardinality);
  acc_dispersion_ += obs.dispersion;
  acc_bins_ += static_cast<double>(obs.histogram_bins);
  if (acc_count_ < options_.epoch_interval) return;

  // Epoch boundary: the epoch's plain means replace the estimate and
  // the spec is re-chosen. Pure function of tuple content and counts.
  const double inv = 1.0 / static_cast<double>(acc_count_);
  estimate_.cardinality = static_cast<size_t>(
      std::llround(acc_cardinality_ * inv));
  estimate_.dispersion = acc_dispersion_ * inv;
  estimate_.histogram_bins =
      static_cast<size_t>(std::llround(acc_bins_ * inv));
  acc_count_ = 0;
  acc_cardinality_ = acc_dispersion_ = acc_bins_ = 0.0;
  ++epochs_;
  if (m_recalibrations_ != nullptr) m_recalibrations_->Increment();
  RecordDecision(Choose(target_, estimate_, options_));
}

std::string MethodChooser::DecisionLogString() const {
  std::string out;
  for (const Decision& d : decisions_) {
    out += "epoch " + std::to_string(d.epoch) + ": " + d.spec.ToString() +
           "\n";
  }
  return out;
}

}  // namespace govern
}  // namespace ausdb
