#ifndef AUSDB_GOVERN_OVERLOAD_INJECTOR_H_
#define AUSDB_GOVERN_OVERLOAD_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/govern/signals.h"

namespace ausdb {
namespace govern {

/// One load regime, held for `epochs` decision epochs.
struct OverloadPhase {
  size_t epochs = 1;

  /// Queue occupancy fraction in [0, 1] during the phase.
  double queue_fill = 0.0;

  /// Memory-budget occupancy fraction in [0, 1] during the phase.
  double memory_fill = 0.0;

  /// Sampled latency as a multiple of the SLO (1.0 = exactly at SLO).
  double latency_ratio = 0.0;

  /// Backpressure events and shed tuples accrued per epoch of the
  /// phase (cumulative counters in the snapshots, like the real ones).
  uint64_t backpressure_per_epoch = 0;
  uint64_t shed_per_epoch = 0;
};

/// \brief Overload fault injector, in the FaultInjector mold: a
/// SignalSource whose snapshots follow a scripted phase schedule
/// instead of live gauges. The snapshot for epoch e is a pure function
/// of (phases, e) — no clocks, no randomness — so an overload scenario
/// replays exactly, which is what the scripted-load equivalence
/// harness and bench_overload assert against.
///
/// Epochs past the end of the schedule hold the last phase's regime
/// (cumulative counters keep accruing), modeling sustained load.
class OverloadInjector final : public SignalSource {
 public:
  /// `phases` must be non-empty; zero-epoch phases count as one epoch.
  /// The queue capacity / memory limit / latency SLO give the fills and
  /// ratios concrete units in the emitted snapshots.
  explicit OverloadInjector(std::vector<OverloadPhase> phases,
                            size_t queue_capacity = 1024,
                            size_t memory_limit_bytes = 64 << 20,
                            double latency_slo_seconds = 0.001);

  SignalSnapshot Snapshot(uint64_t epoch) override;

  /// Total epochs the schedule spans before the last phase repeats.
  size_t scripted_epochs() const { return total_epochs_; }

  // Canned scenarios, shared by tests and bench_overload.

  /// Steady light load: the governor should never leave rung 0.
  static std::vector<OverloadPhase> CalmScript(size_t epochs);

  /// Calm, then a `magnitude`x load spike for `spike_epochs`, then calm
  /// again — the DESIGN/README "10x spike" scenario.
  static std::vector<OverloadPhase> SpikeScript(size_t calm_epochs,
                                                size_t spike_epochs,
                                                double magnitude = 10.0);

  /// Pressure pinned past every rung: forces admission control and,
  /// held long enough, a breaker trip.
  static std::vector<OverloadPhase> SaturationScript(size_t epochs);

  /// Latency creeping past the SLO while queues stay modest — the
  /// slow-consumer shape (latency pressure dominates).
  static std::vector<OverloadPhase> SlowConsumerScript(size_t epochs);

  /// Memory fill ramping toward the budget limit — the signal mix that
  /// should escalate before kResourceExhausted ever fires.
  static std::vector<OverloadPhase> BudgetExhaustionScript(size_t epochs);

 private:
  struct Segment {
    uint64_t first_epoch;  ///< first epoch this phase covers
    OverloadPhase phase;
    /// Cumulative counters at the start of the segment.
    uint64_t backpressure_base;
    uint64_t shed_base;
  };

  std::vector<Segment> segments_;
  size_t total_epochs_ = 0;
  size_t queue_capacity_;
  size_t memory_limit_bytes_;
  double latency_slo_seconds_;
};

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_OVERLOAD_INJECTOR_H_
