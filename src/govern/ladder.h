#ifndef AUSDB_GOVERN_LADDER_H_
#define AUSDB_GOVERN_LADDER_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace ausdb {
namespace govern {

/// \brief One rung of the degradation ladder: the precision the engine
/// runs at while overloaded. Rung 0 is always full precision; higher
/// rungs shed precision, never tuples.
///
/// A rung is *applied* downstream by the operators that own each knob —
/// the AccuracyAnnotator scales its bootstrap/Monte Carlo effort and
/// coarsens histograms, the ReorderBuffer shortens its hold horizon —
/// keyed off the rung stamp the GovernorGate put on each tuple. Every
/// knob has an honest re-annotation story: reduced effort shows up as a
/// reduced effective sample size (and merged bins), so the Lemma 1-3 /
/// bootstrap interval machinery derives the *wider* interval the cheaper
/// computation actually supports.
struct RungSpec {
  /// Multiplier in (0, 1] on Monte Carlo / bootstrap sample counts and
  /// on the de facto sample size the accuracy intervals are derived
  /// from. 1.0 = full precision.
  double sample_scale = 1.0;

  /// Histogram coarsening factor: adjacent-bin merge width (1 = full
  /// resolution, 2 = halve the bins, ...). Merged bins carry the summed
  /// mass, so the distribution stays normalized and the per-bin Lemma 1
  /// intervals are computed over the coarser representation.
  size_t histogram_merge = 1;

  /// Replace the bootstrap path with the analytical Lemma 1-3 closed
  /// forms — the cheap path of the paper's Figure 5(a) tradeoff.
  bool force_analytical = false;

  /// Multiplier in (0, 1] on the `WITHIN` reorder hold horizon: under
  /// pressure the buffer releases earlier, spending less memory and
  /// latency on reordering. Stragglers that would have been reordered
  /// surface as late tuples for the window's `LATENESS` revision path —
  /// the real-time answer is coarser (more revisions), but no tuple is
  /// dropped.
  double lateness_scale = 1.0;

  /// True iff this rung changes nothing (rung 0's required shape).
  bool IsNeutral() const {
    return sample_scale == 1.0 && histogram_merge == 1 &&
           !force_analytical && lateness_scale == 1.0;
  }
};

/// \brief The full ladder plus the thresholds that move the engine along
/// it.
///
/// Determinism contract: the ladder itself is immutable after
/// construction, and every decision made from it is a pure function of
/// (pressure snapshot, current rung, dwell count) — see
/// OverloadGovernor. Nothing here reads a clock.
struct LadderPolicy {
  /// rungs[0] must be neutral; each later rung should shed at least as
  /// much as its predecessor (Validate checks monotonicity).
  std::vector<RungSpec> rungs;

  /// Escalate one rung when pressure >= escalate_at for dwell_epochs
  /// consecutive decision epochs.
  double escalate_at = 0.85;

  /// Relax one rung when pressure <= relax_at for dwell_epochs
  /// consecutive decision epochs. Must be < escalate_at — the gap is
  /// the hysteresis band that stops the ladder from thrashing on a
  /// pressure signal hovering at a threshold.
  double relax_at = 0.45;

  /// Consecutive epochs a side of the hysteresis band must hold before
  /// the rung moves. Counted in decision epochs, never wall time.
  size_t dwell_epochs = 2;

  /// The accuracy floor: rungs whose sample_scale is below this are
  /// unreachable. When pressure calls for escalation past the last
  /// permitted rung, the governor switches to admission control
  /// (kOverloaded at the source) instead of degrading further — the
  /// engine refuses to produce intervals it is not willing to vouch
  /// for.
  double accuracy_floor = 0.2;

  /// The default five-rung ladder: halve sampling effort, coarsen
  /// histograms, drop to the analytical path, then shorten reorder
  /// horizons; floor at 1/4 of full sampling effort.
  static LadderPolicy Default();

  Status Validate() const;

  /// Index of the deepest rung the accuracy floor permits.
  size_t MaxUsableRung() const;
};

/// What the pressure signal asks of the ladder this epoch — the pure
/// classification at the heart of the decision function.
enum class LadderMove {
  kHold,      ///< inside the hysteresis band
  kEscalate,  ///< pressure at/above escalate_at
  kRelax,     ///< pressure at/below relax_at
};

LadderMove ClassifyPressure(const LadderPolicy& policy, double pressure);

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_LADDER_H_
