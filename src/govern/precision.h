#ifndef AUSDB_GOVERN_PRECISION_H_
#define AUSDB_GOVERN_PRECISION_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/dist/histogram.h"
#include "src/dist/random_var.h"
#include "src/govern/ladder.h"

namespace ausdb {
namespace govern {

/// \brief The rung-scaled de facto sample size: floor(n * scale),
/// clamped into [2, n] (Lemma 2 needs n >= 2; degradation never
/// *raises* provenance — an input already at n <= 2 passes through).
/// Deterministic values (kCertainSampleSize) pass through untouched —
/// certainty cannot be shed.
size_t EffectiveSampleSize(size_t n, double scale);

/// The rung-scaled bootstrap resample count: floor(r * scale), clamped
/// into [2, r] (a percentile needs at least two resamples; scaling
/// never adds work).
size_t EffectiveResamples(size_t r, double scale);

/// \brief Coarsens a histogram by merging each run of `merge` adjacent
/// bins into one (the last run may be shorter): kept edges are every
/// merge-th original edge plus the last, and each merged bin's mass is
/// the sum of its parts. merge <= 1 returns the input unchanged.
Result<dist::HistogramDist> CoarsenHistogram(const dist::HistogramDist& h,
                                             size_t merge);

/// \brief Applies a rung's precision shedding to an uncertain value:
/// histogram distributions are coarsened by `spec.histogram_merge`, and
/// the de facto sample size is scaled by `spec.sample_scale`.
///
/// This is the honesty half of the degradation ladder: the degraded
/// variable is written back into the tuple, so the reduced provenance
/// flows through the existing Lemma 1-3 / bootstrap machinery and the
/// annotated intervals come out wider — the tuple carries exactly the
/// precision its intervals vouch for, never a full-precision claim on
/// shed work.
Result<dist::RandomVar> DegradeRandomVar(const dist::RandomVar& rv,
                                         const RungSpec& spec);

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_PRECISION_H_
