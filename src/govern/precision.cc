#include "src/govern/precision.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

namespace ausdb {
namespace govern {

size_t EffectiveSampleSize(size_t n, double scale) {
  if (n == dist::RandomVar::kCertainSampleSize || n <= 2) return n;
  const double scaled = std::floor(static_cast<double>(n) * scale);
  // Floor at 2 (one degree of freedom for the variance lemmas) but
  // never above n: degradation must not fabricate provenance the field
  // never had.
  return std::max<size_t>(2, std::min(n, static_cast<size_t>(scaled)));
}

size_t EffectiveResamples(size_t r, double scale) {
  if (r <= 2) return r;
  const double scaled = std::floor(static_cast<double>(r) * scale);
  return std::max<size_t>(2, std::min(r, static_cast<size_t>(scaled)));
}

Result<dist::HistogramDist> CoarsenHistogram(const dist::HistogramDist& h,
                                             size_t merge) {
  if (merge <= 1 || h.bin_count() <= 1) {
    return dist::HistogramDist::Make(h.edges(), h.probs());
  }
  std::vector<double> edges;
  std::vector<double> probs;
  edges.reserve(h.bin_count() / merge + 2);
  probs.reserve(h.bin_count() / merge + 1);
  for (size_t i = 0; i < h.bin_count(); i += merge) {
    const size_t end = std::min(i + merge, h.bin_count());
    edges.push_back(h.edges()[i]);
    double mass = 0.0;
    for (size_t j = i; j < end; ++j) mass += h.BinProb(j);
    probs.push_back(mass);
  }
  edges.push_back(h.edges().back());
  return dist::HistogramDist::Make(std::move(edges), std::move(probs));
}

Result<dist::RandomVar> DegradeRandomVar(const dist::RandomVar& rv,
                                         const RungSpec& spec) {
  if (rv.is_certain() || spec.IsNeutral()) return rv;
  dist::DistributionPtr d = rv.distribution();
  if (spec.histogram_merge > 1 &&
      d->kind() == dist::DistributionKind::kHistogram) {
    const auto& h = static_cast<const dist::HistogramDist&>(*d);
    if (h.bin_count() > 1) {
      AUSDB_ASSIGN_OR_RETURN(dist::HistogramDist coarse,
                             CoarsenHistogram(h, spec.histogram_merge));
      d = std::make_shared<dist::HistogramDist>(std::move(coarse));
    }
  }
  dist::RandomVar degraded(
      std::move(d), EffectiveSampleSize(rv.sample_size(),
                                        spec.sample_scale));
  // Keep the retained raw sample: the bootstrap path reads a prefix of
  // it sized by the effective (n, r), so holding the pointer costs
  // nothing and loses nothing.
  degraded.set_raw_sample(rv.raw_sample());
  return degraded;
}

}  // namespace govern
}  // namespace ausdb
