#include "src/govern/governor_gate.h"

#include <utility>

namespace ausdb {
namespace govern {

Result<std::unique_ptr<GovernorGate>> GovernorGate::Make(
    engine::OperatorPtr child, std::unique_ptr<SignalSource> signals,
    GovernorOptions options) {
  if (child == nullptr) {
    return Status::InvalidArgument("GovernorGate needs a child operator");
  }
  if (signals == nullptr) {
    return Status::InvalidArgument("GovernorGate needs a signal source");
  }
  Status valid = options.ladder.Validate();
  if (!valid.ok()) return valid;
  return std::unique_ptr<GovernorGate>(new GovernorGate(
      std::move(child), std::move(signals), std::move(options)));
}

GovernorGate::GovernorGate(engine::OperatorPtr child,
                           std::unique_ptr<SignalSource> signals,
                           GovernorOptions options)
    : child_(std::move(child)),
      signals_(std::move(signals)),
      options_(options),
      governor_(std::move(options)) {}

Result<std::optional<engine::Tuple>> GovernorGate::Next() {
  // Tick before handling, so the very first pull runs under a decision
  // (epoch 0) and every pull thereafter is governed by the decision of
  // the epoch it falls into. Refused pulls advance the call count too —
  // otherwise a refusing gate would never reach its next epoch and
  // could not re-admit.
  if (calls_ % governor_.options().epoch_interval == 0) {
    decision_ = governor_.Observe(signals_->Snapshot(next_epoch_));
    ++next_epoch_;
  }
  ++calls_;

  if (decision_.breaker_open) {
    ++rejected_unavailable_;
    return Status::Unavailable(
        "governor circuit open: operator quarantined for persistent "
        "overload");
  }
  if (!decision_.admit) {
    ++rejected_overloaded_;
    return Status::Overloaded(
        "governor admission control: pressure past the accuracy floor");
  }

  AUSDB_ASSIGN_OR_RETURN(std::optional<engine::Tuple> pulled,
                         child_->Next());
  if (pulled.has_value()) {
    pulled->set_precision_rung(static_cast<uint32_t>(decision_.rung));
    ++admitted_;
  }
  return pulled;
}

Status GovernorGate::Reset() {
  Status st = child_->Reset();
  if (!st.ok()) return st;
  // A reset replays the stream from the top; the governor must replay
  // its decisions from epoch 0 too, or the rerun would start on
  // whatever rung the first pass ended on and diverge.
  governor_ = OverloadGovernor(options_);
  decision_ = GovernorDecision{};
  calls_ = 0;
  next_epoch_ = 0;
  rejected_overloaded_ = 0;
  rejected_unavailable_ = 0;
  admitted_ = 0;
  return Status::OK();
}

}  // namespace govern
}  // namespace ausdb
