#include "src/govern/ladder.h"

#include <cmath>
#include <string>

namespace ausdb {
namespace govern {

LadderPolicy LadderPolicy::Default() {
  LadderPolicy policy;
  policy.rungs = {
      // Rung 0: full precision.
      {1.0, 1, false, 1.0},
      // Rung 1: halve Monte Carlo / bootstrap effort.
      {0.5, 1, false, 1.0},
      // Rung 2: also halve histogram resolution.
      {0.5, 2, false, 1.0},
      // Rung 3: quarter effort and switch bootstrap -> Lemma 1-3.
      {0.25, 2, true, 1.0},
      // Rung 4: also halve the reorder hold horizon.
      {0.25, 4, true, 0.5},
  };
  return policy;
}

Status LadderPolicy::Validate() const {
  if (rungs.empty()) {
    return Status::InvalidArgument("ladder needs at least rung 0");
  }
  if (!rungs.front().IsNeutral()) {
    return Status::InvalidArgument(
        "ladder rung 0 must be full precision (neutral)");
  }
  for (size_t i = 0; i < rungs.size(); ++i) {
    const RungSpec& r = rungs[i];
    if (!(r.sample_scale > 0.0) || r.sample_scale > 1.0 ||
        !std::isfinite(r.sample_scale)) {
      return Status::InvalidArgument(
          "rung " + std::to_string(i) + ": sample_scale must be in (0, 1]");
    }
    if (r.histogram_merge == 0) {
      return Status::InvalidArgument(
          "rung " + std::to_string(i) + ": histogram_merge must be >= 1");
    }
    if (!(r.lateness_scale > 0.0) || r.lateness_scale > 1.0 ||
        !std::isfinite(r.lateness_scale)) {
      return Status::InvalidArgument(
          "rung " + std::to_string(i) +
          ": lateness_scale must be in (0, 1]");
    }
    if (i > 0) {
      const RungSpec& prev = rungs[i - 1];
      if (r.sample_scale > prev.sample_scale ||
          r.histogram_merge < prev.histogram_merge ||
          (prev.force_analytical && !r.force_analytical) ||
          r.lateness_scale > prev.lateness_scale) {
        return Status::InvalidArgument(
            "rung " + std::to_string(i) +
            " sheds less precision than rung " + std::to_string(i - 1) +
            " (the ladder must be monotone)");
      }
    }
  }
  if (!(escalate_at > relax_at)) {
    return Status::InvalidArgument(
        "escalate_at must exceed relax_at (the hysteresis band)");
  }
  if (dwell_epochs == 0) {
    return Status::InvalidArgument("dwell_epochs must be >= 1");
  }
  if (!(accuracy_floor > 0.0) || accuracy_floor > 1.0) {
    return Status::InvalidArgument("accuracy_floor must be in (0, 1]");
  }
  return Status::OK();
}

size_t LadderPolicy::MaxUsableRung() const {
  size_t deepest = 0;
  for (size_t i = 0; i < rungs.size(); ++i) {
    if (rungs[i].sample_scale >= accuracy_floor) deepest = i;
  }
  return deepest;
}

LadderMove ClassifyPressure(const LadderPolicy& policy, double pressure) {
  if (pressure >= policy.escalate_at) return LadderMove::kEscalate;
  if (pressure <= policy.relax_at) return LadderMove::kRelax;
  return LadderMove::kHold;
}

}  // namespace govern
}  // namespace ausdb
