#include "src/govern/overload_injector.h"

#include <algorithm>
#include <cmath>

namespace ausdb {
namespace govern {

OverloadInjector::OverloadInjector(std::vector<OverloadPhase> phases,
                                   size_t queue_capacity,
                                   size_t memory_limit_bytes,
                                   double latency_slo_seconds)
    : queue_capacity_(queue_capacity),
      memory_limit_bytes_(memory_limit_bytes),
      latency_slo_seconds_(latency_slo_seconds) {
  if (phases.empty()) phases.push_back(OverloadPhase{});
  uint64_t epoch = 0;
  uint64_t backpressure = 0;
  uint64_t shed = 0;
  for (OverloadPhase& phase : phases) {
    if (phase.epochs == 0) phase.epochs = 1;
    segments_.push_back({epoch, phase, backpressure, shed});
    epoch += phase.epochs;
    backpressure += phase.backpressure_per_epoch * phase.epochs;
    shed += phase.shed_per_epoch * phase.epochs;
  }
  total_epochs_ = static_cast<size_t>(epoch);
}

SignalSnapshot OverloadInjector::Snapshot(uint64_t epoch) {
  // Binary search for the segment covering `epoch`; epochs past the
  // schedule stay in the last segment with its per-epoch counters still
  // accruing.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), epoch,
      [](uint64_t e, const Segment& s) { return e < s.first_epoch; });
  const Segment& seg = *std::prev(it);
  const uint64_t into = epoch - seg.first_epoch;

  SignalSnapshot snap;
  snap.epoch = epoch;
  snap.queue_capacity = queue_capacity_;
  snap.queue_depth = static_cast<size_t>(
      std::lround(std::clamp(seg.phase.queue_fill, 0.0, 1.0) *
                  static_cast<double>(queue_capacity_)));
  snap.memory_limit_bytes = memory_limit_bytes_;
  snap.memory_used_bytes = static_cast<size_t>(
      std::lround(std::clamp(seg.phase.memory_fill, 0.0, 1.0) *
                  static_cast<double>(memory_limit_bytes_)));
  snap.latency_slo_seconds = latency_slo_seconds_;
  snap.sampled_latency_seconds =
      seg.phase.latency_ratio * latency_slo_seconds_;
  snap.backpressure_events =
      seg.backpressure_base + seg.phase.backpressure_per_epoch * (into + 1);
  snap.shed_tuples = seg.shed_base + seg.phase.shed_per_epoch * (into + 1);
  return snap;
}

std::vector<OverloadPhase> OverloadInjector::CalmScript(size_t epochs) {
  OverloadPhase calm;
  calm.epochs = epochs;
  calm.queue_fill = 0.1;
  calm.latency_ratio = 0.2;
  return {calm};
}

std::vector<OverloadPhase> OverloadInjector::SpikeScript(
    size_t calm_epochs, size_t spike_epochs, double magnitude) {
  OverloadPhase calm;
  calm.epochs = calm_epochs;
  calm.queue_fill = 0.1;
  calm.latency_ratio = 0.2;

  // A magnitude-x offered load pins the queue and blows the latency SLO
  // by the same factor (capped by what the signals can express).
  OverloadPhase spike;
  spike.epochs = spike_epochs;
  spike.queue_fill = std::min(1.0, 0.1 * magnitude);
  spike.latency_ratio = std::min(2.0, 0.2 * magnitude);
  spike.backpressure_per_epoch = static_cast<uint64_t>(magnitude);

  return {calm, spike, calm};
}

std::vector<OverloadPhase> OverloadInjector::SaturationScript(
    size_t epochs) {
  OverloadPhase pinned;
  pinned.epochs = epochs;
  pinned.queue_fill = 1.0;
  pinned.latency_ratio = 2.0;
  pinned.backpressure_per_epoch = 64;
  return {pinned};
}

std::vector<OverloadPhase> OverloadInjector::SlowConsumerScript(
    size_t epochs) {
  OverloadPhase slow;
  slow.epochs = epochs;
  slow.queue_fill = 0.3;
  slow.latency_ratio = 1.5;
  return {slow};
}

std::vector<OverloadPhase> OverloadInjector::BudgetExhaustionScript(
    size_t epochs) {
  // Three steps ramping the budget toward its limit.
  const size_t step = std::max<size_t>(1, epochs / 3);
  OverloadPhase low, mid, high;
  low.epochs = step;
  low.memory_fill = 0.4;
  mid.epochs = step;
  mid.memory_fill = 0.7;
  high.epochs = epochs - 2 * step;
  high.memory_fill = 0.97;
  if (high.epochs == 0) high.epochs = 1;
  return {low, mid, high};
}

}  // namespace govern
}  // namespace ausdb
