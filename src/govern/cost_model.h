#ifndef AUSDB_GOVERN_COST_MODEL_H_
#define AUSDB_GOVERN_COST_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/accuracy/accuracy_info.h"
#include "src/common/result.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace govern {

/// \brief One annotation configuration the steady-state chooser can put
/// in force: the estimation method plus its effort knobs. The shape
/// mirrors a degradation-ladder RungSpec on purpose — the chooser and
/// the overload governor actuate the same surface, so a chosen spec and
/// a pressure rung compose by simply taking the cheaper side of every
/// knob (the governor always overrides *downward*; see
/// AccuracyAnnotator).
struct MethodSpec {
  accuracy::AccuracyMethod method = accuracy::AccuracyMethod::kAnalytical;

  /// Bootstrap only: number of d.f. resamples r. 0 for analytical.
  size_t bootstrap_resamples = 0;

  /// Histogram coarsening factor applied before annotation (1 = full
  /// resolution), the same knob as RungSpec::histogram_merge.
  size_t histogram_merge = 1;

  /// Provenance multiplier in (0, 1]. The chooser always emits 1.0 —
  /// shedding provenance never helps *meet* an accuracy target — but
  /// the field exists so a spec composes with a RungSpec and so the
  /// ladder's accuracy floor bounds both actuators the same way.
  double sample_scale = 1.0;

  bool is_bootstrap() const {
    return method == accuracy::AccuracyMethod::kBootstrap;
  }

  /// Canonical byte-stable rendering, e.g. "analytical/merge1" or
  /// "bootstrap(r=50)/merge2". The determinism harness compares decision
  /// logs through this string.
  std::string ToString() const;

  bool operator==(const MethodSpec& other) const = default;
};

/// \brief A user-stated steady-state accuracy target:
/// `WITH ACCURACY <epsilon> [CONFIDENCE <c>]` asks for mean-interval
/// half-width at most `epsilon` at confidence `c`, for the cheapest
/// price the engine can predict. Alternatively (or additionally) a
/// per-tuple cost budget caps the spend — the latency-SLO form.
struct AccuracyTarget {
  /// Maximum acceptable mean-CI half-width, in value units. 0 = no
  /// half-width constraint (cost budget only).
  double epsilon = 0.0;

  /// Confidence level the intervals must hold at, in (0, 1).
  double confidence = 0.9;

  /// Optional per-tuple budget in cost-table work units; 0 = unbounded.
  /// With both constraints set, epsilon is a hard floor and the budget
  /// trims effort above it; with only a budget, the chooser maximizes
  /// predicted accuracy within the budget.
  double cost_budget = 0.0;

  Status Validate() const;
};

/// \brief The deterministic per-epoch workload estimate the predictions
/// consume: everything here is derived from observed tuple *content*
/// (d.f. cardinality, dispersion, bin counts), never from timing, so
/// identical streams produce identical estimates on any machine.
struct WindowObservation {
  /// Observed (de facto) sample size n of annotated fields.
  size_t cardinality = 50;

  /// Observed dispersion s (standard deviation) of annotated fields.
  double dispersion = 1.0;

  /// Histogram bin count of annotated fields; 0 = non-histogram.
  size_t histogram_bins = 0;
};

/// \brief Calibrated per-operator cost table, in abstract work units
/// (relative costs of the annotation paths, not wall time — decisions
/// made from wall time would break bit-identical replay, so unit costs
/// are measured offline by bench_accuracy_target and baked in; the
/// *workload* half of the prediction recalibrates online from observed
/// tuples).
struct CostTable {
  /// Fixed cost of one analytical (Lemma 1-3) annotation.
  double analytical_base = 1.0;

  /// Cost per histogram bin interval (Lemma 1 / per-bin percentile).
  double per_bin = 0.05;

  /// Fixed cost of entering the bootstrap path.
  double bootstrap_base = 4.0;

  /// Cost per drawn/examined bootstrap value (n_eff * r of them).
  double per_resample_value = 0.02;

  static CostTable Default() { return {}; }

  Status Validate() const;
};

/// \brief Predicted mean-interval half-width of `spec` on workload
/// `obs` at `confidence` — the accuracy model.
///
///  * analytical: t_{(1-c)/2, n-1} * s / sqrt(n) (z for n >= 30),
///    exactly Lemma 2's interval arithmetic;
///  * bootstrap: z_{(1-c)/2} * s / sqrt(n) inflated by
///    (1 + 2/sqrt(r)) — the percentile estimate over r resamples
///    carries quantile noise that decays like 1/sqrt(r);
///  * histogram coarsening adds s * (merge - 1) / bins of resolution
///    slack, so tighter targets force finer histograms.
///
/// The prediction is intentionally conservative: the conformance
/// harness (tests/accuracy_conformance_test.cc) checks the *empirical*
/// coverage of every selectable spec, which is what makes this model
/// trustworthy rather than just plausible.
double PredictHalfWidth(const MethodSpec& spec, const WindowObservation& obs,
                        double confidence);

/// Predicted per-tuple work units of `spec` on workload `obs`.
double PredictCost(const MethodSpec& spec, const WindowObservation& obs,
                   const CostTable& table);

/// \brief Fewest bootstrap resamples whose percentile interval can hold
/// confidence c within the conformance harness's tolerance: ten
/// resamples beyond each (1±c)/2 cut, i.e. r >= 20/(1-c). The weaker
/// interior-order-statistic minimum (r >= 2/(1-c)) is necessary but
/// empirically insufficient — the harness measured it at 0.80 coverage
/// against a 0.90 target. Candidates below this bound are never
/// selectable, no matter what the cost table says.
size_t MinConformingResamples(double confidence);

/// Options of the MethodChooser.
struct ChooserOptions {
  CostTable table;

  /// Candidate bootstrap resample counts, ascending. Candidates below
  /// MinConformingResamples(target.confidence) are skipped — at the
  /// default 0.9 confidence that leaves {200, 400}.
  std::vector<size_t> resample_candidates = {20, 50, 100, 200, 400};

  /// Candidate histogram coarsening factors, ascending from 1.
  std::vector<size_t> merge_candidates = {1, 2, 4};

  /// The ladder's accuracy floor: the chooser never emits a spec whose
  /// sample_scale is below it (trivially satisfied by the chooser's
  /// fixed 1.0, but kept so a caller wiring a governed plan can assert
  /// both actuators share one floor).
  double accuracy_floor = 0.2;

  /// Observe() calls per recalibration epoch. Epochs tick on pull
  /// counts, never wall clock — the determinism contract.
  size_t epoch_interval = 256;

  /// Plan-time workload estimate, used for the initial choice before
  /// any tuple has been observed.
  WindowObservation prior;

  /// When non-null, chooser observability is mirrored into
  /// `ausdb_cost_*` metrics labeled `{plan=metrics_label}`. Write-only
  /// per the obs contract: the data path never reads a metric back.
  obs::MetricRegistry* metrics = nullptr;
  std::string metrics_label = "plan";

  /// When non-null, every spec *change* (the same changes-only rule as
  /// the decision log) is journaled as kCostRechoice with the
  /// recalibration epoch as logical time and MethodSpec::ToString() as
  /// the detail. Write-only per the obs contract.
  obs::EventJournal* journal = nullptr;
};

/// \brief The steady-state accuracy-target cost model: picks the
/// cheapest annotation configuration predicted to meet a stated
/// accuracy target (or the most accurate one inside a cost budget),
/// and recalibrates its workload estimate from observed tuples on
/// pull-count epochs.
///
/// Decision function (pure, exhaustively enumerated):
///   1. enumerate candidates in a fixed order — analytical, then
///      bootstrap by ascending r, each at every merge factor;
///   2. drop candidates that cannot conform (r below the interior-
///      quantile minimum for the target confidence);
///   3. feasible = predicted half-width <= epsilon (when epsilon > 0)
///      and predicted cost <= budget (when budget > 0);
///   4. among feasible candidates: with an epsilon goal pick minimal
///      predicted cost, then minimal half-width, then lowest
///      enumeration index; with a budget-only goal (the latency-SLO
///      form) pick minimal half-width, then minimal cost — the most
///      accurate answer the budget affords;
///   5. with no feasible candidate: an epsilon goal falls back to the
///      most accurate candidate (ignoring cost) — the engine never
///      silently serves an interval looser than the best it can
///      afford; a budget-only goal falls back to the cheapest
///      candidate, overshooting an unaffordable budget by the minimum
///      possible.
///
/// Monotonicity follows from (3)-(4): tightening epsilon only shrinks
/// the feasible set, so the chosen predicted cost — and, because cost
/// is strictly increasing in the bootstrap sample budget — the chosen
/// effort never decreases. tests/cost_model_test.cc asserts this over
/// target sweeps.
///
/// Determinism contract: Choose() is a pure function of (target,
/// observation, options); Observe() advances integer state by call
/// counts only. Two runs fed the same tuple stream produce
/// byte-identical decision logs across thread counts and metrics
/// on/off, which the conformance and property harnesses assert
/// literally.
class MethodChooser {
 public:
  explicit MethodChooser(ChooserOptions options);

  /// Sets (or replaces) the target and re-chooses immediately from the
  /// current workload estimate. kInvalidArgument on a malformed target.
  Status SetTarget(const AccuracyTarget& target);

  const AccuracyTarget& target() const { return target_; }

  /// The spec currently in force.
  const MethodSpec& current() const { return current_; }

  /// The pure decision function (steps 1-5 above).
  static MethodSpec Choose(const AccuracyTarget& target,
                           const WindowObservation& obs,
                           const ChooserOptions& options);

  /// Every spec Choose() may return for `target` under `options`, in
  /// enumeration order — the conformance harness tests exactly this
  /// set, so a new candidate cannot ship without a coverage gate.
  static std::vector<MethodSpec> SelectableSpecs(
      const AccuracyTarget& target, const ChooserOptions& options);

  /// Feeds one observed tuple's workload. Every epoch_interval calls
  /// the running estimate replaces the previous epoch's and the spec
  /// is re-chosen. Estimates are plain means over the epoch — derived
  /// from tuple content, never timing.
  void Observe(const WindowObservation& obs);

  /// One (re)choice, for the determinism harness's decision log.
  struct Decision {
    uint64_t epoch = 0;
    MethodSpec spec;

    bool operator==(const Decision& other) const = default;
  };

  /// Every choice so far (including the initial one), in epoch order.
  const std::vector<Decision>& decisions() const { return decisions_; }

  /// The decision log rendered canonically, one line per decision —
  /// what the cross-thread determinism tests compare byte-for-byte.
  std::string DecisionLogString() const;

  /// Current workload estimate (prior until the first epoch completes).
  const WindowObservation& estimate() const { return estimate_; }

  const ChooserOptions& options() const { return options_; }
  uint64_t observed_tuples() const { return observed_; }
  uint64_t epochs() const { return epochs_; }

 private:
  void RecordDecision(const MethodSpec& spec);

  ChooserOptions options_;
  AccuracyTarget target_;
  MethodSpec current_;
  WindowObservation estimate_;
  std::vector<Decision> decisions_;

  uint64_t observed_ = 0;  ///< Observe() calls, ever
  uint64_t epochs_ = 0;    ///< recalibration epochs completed

  // Accumulators of the in-flight epoch.
  uint64_t acc_count_ = 0;
  double acc_cardinality_ = 0.0;
  double acc_dispersion_ = 0.0;
  double acc_bins_ = 0.0;

  // Registry-owned metrics; null when options_.metrics is null.
  obs::Counter* m_decisions_ = nullptr;
  obs::Counter* m_recalibrations_ = nullptr;
  obs::Counter* m_method_flips_ = nullptr;
  obs::Gauge* m_selected_method_ = nullptr;
  obs::Gauge* m_selected_resamples_ = nullptr;
  obs::Gauge* m_predicted_cost_milli_ = nullptr;
  obs::Gauge* m_predicted_halfwidth_milli_ = nullptr;
};

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_COST_MODEL_H_
