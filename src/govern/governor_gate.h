#ifndef AUSDB_GOVERN_GOVERNOR_GATE_H_
#define AUSDB_GOVERN_GOVERNOR_GATE_H_

#include <cstdint>
#include <memory>

#include "src/common/result.h"
#include "src/engine/operator.h"
#include "src/govern/governor.h"
#include "src/govern/signals.h"

namespace ausdb {
namespace govern {

/// \brief The operator that puts the governor in the plan: wraps a
/// source (or any subtree), ticks a decision epoch every
/// `epoch_interval` Next() calls, and enforces the decision in force —
/// stamping each admitted tuple with the current precision rung,
/// refusing admission with kOverloaded past the accuracy floor, and
/// failing with kUnavailable while the circuit breaker is open (which
/// the wrapping SupervisedScan turns into retry/backoff/quarantine).
///
/// Epochs are counted in Next() calls — including refused ones — never
/// in wall-clock time, so the rung a given pull sees is a pure function
/// of (call index, snapshot script). The per-tuple rung stamp then makes
/// every downstream precision decision buffering-independent.
class GovernorGate final : public engine::Operator {
 public:
  /// Validates options.ladder; kInvalidArgument on a malformed ladder.
  static Result<std::unique_ptr<GovernorGate>> Make(
      engine::OperatorPtr child, std::unique_ptr<SignalSource> signals,
      GovernorOptions options);

  const engine::Schema& schema() const override { return child_->schema(); }
  Result<std::optional<engine::Tuple>> Next() override;
  Status Reset() override;
  Status Close() override { return child_->Close(); }
  void BindThreadPool(ThreadPool* pool) override {
    child_->BindThreadPool(pool);
  }

  const OverloadGovernor& governor() const { return governor_; }

  /// Pulls refused with kOverloaded (admission control).
  uint64_t rejected_overloaded() const { return rejected_overloaded_; }
  /// Pulls refused with kUnavailable (breaker open).
  uint64_t rejected_unavailable() const { return rejected_unavailable_; }
  /// Tuples admitted (and rung-stamped).
  uint64_t admitted() const { return admitted_; }

 private:
  GovernorGate(engine::OperatorPtr child,
               std::unique_ptr<SignalSource> signals,
               GovernorOptions options);

  engine::OperatorPtr child_;
  std::unique_ptr<SignalSource> signals_;
  GovernorOptions options_;
  OverloadGovernor governor_;
  GovernorDecision decision_;

  uint64_t calls_ = 0;       ///< Next() calls, refused ones included
  uint64_t next_epoch_ = 0;  ///< decision epochs ticked so far
  uint64_t rejected_overloaded_ = 0;
  uint64_t rejected_unavailable_ = 0;
  uint64_t admitted_ = 0;
};

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_GOVERNOR_GATE_H_
