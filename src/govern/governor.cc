#include "src/govern/governor.h"

#include <algorithm>

namespace ausdb {
namespace govern {

OverloadGovernor::OverloadGovernor(GovernorOptions options)
    : options_(std::move(options)) {
  if (!options_.ladder.Validate().ok()) {
    // Direct construction clamps to the validated default; callers that
    // want the error surfaced go through GovernorGate::Make.
    options_.ladder = LadderPolicy::Default();
  }
  if (options_.epoch_interval == 0) options_.epoch_interval = 1;
  if (options_.breaker_trip_epochs == 0) options_.breaker_trip_epochs = 1;
  if (options_.breaker_cooldown_epochs == 0) {
    options_.breaker_cooldown_epochs = 1;
  }
  max_rung_ = options_.ladder.MaxUsableRung();
  stats_.rung_epochs.assign(options_.ladder.rungs.size(), 0);
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"plan", options_.metrics_label}};
    obs::MetricRegistry* reg = options_.metrics;
    m_rung_ = reg->GetGauge("ausdb_govern_rung", labels,
                            "Current degradation-ladder rung (0 = full "
                            "precision)");
    m_pressure_milli_ = reg->GetGauge(
        "ausdb_govern_pressure_milli", labels,
        "Last observed overload pressure, in thousandths (1000 = at "
        "capacity)");
    m_escalations_ = reg->GetCounter(
        "ausdb_govern_escalations_total", labels,
        "Rung escalations (precision shed one step)");
    m_relaxations_ = reg->GetCounter(
        "ausdb_govern_relaxations_total", labels,
        "Rung relaxations (precision restored one step)");
    m_refusals_ = reg->GetCounter(
        "ausdb_govern_refusal_epochs_total", labels,
        "Epochs spent refusing admission at the accuracy floor");
    m_breaker_trips_ = reg->GetCounter(
        "ausdb_govern_breaker_trips_total", labels,
        "Circuit-breaker trips (persistent overload quarantines)");
    m_rung_epochs_.reserve(options_.ladder.rungs.size());
    for (size_t r = 0; r < options_.ladder.rungs.size(); ++r) {
      obs::Labels rung_labels = labels;
      rung_labels.push_back({"rung", std::to_string(r)});
      m_rung_epochs_.push_back(reg->GetCounter(
          "ausdb_govern_rung_epochs_total", rung_labels,
          "Decision epochs spent at each degradation-ladder rung"));
    }
  }
}

const RungSpec& OverloadGovernor::rung_spec(size_t rung) const {
  const auto& rungs = options_.ladder.rungs;
  return rungs[std::min(rung, rungs.size() - 1)];
}

void OverloadGovernor::MoveTo(size_t rung, uint64_t epoch) {
  transitions_.push_back({epoch, decision_.rung, rung});
  decision_.rung = rung;
  if (m_rung_ != nullptr) m_rung_->Set(static_cast<int64_t>(rung));
}

GovernorDecision OverloadGovernor::Observe(const SignalSnapshot& snap) {
  ++stats_.epochs;
  // Occupancy is charged to the rung in force when the epoch begins —
  // the rung the epoch's tuples actually executed under.
  if (decision_.rung < stats_.rung_epochs.size()) {
    ++stats_.rung_epochs[decision_.rung];
    if (decision_.rung < m_rung_epochs_.size()) {
      m_rung_epochs_[decision_.rung]->Increment();
    }
  }
  const double pressure = Pressure(snap);
  if (m_pressure_milli_ != nullptr) {
    m_pressure_milli_->Set(static_cast<int64_t>(pressure * 1000.0));
  }

  // An open breaker counts down in epochs; every other input is
  // ignored until the cooldown elapses (the quarantined operator is
  // not trusted to recover just because one snapshot looked calm).
  if (breaker_open_remaining_ > 0) {
    --breaker_open_remaining_;
    if (breaker_open_remaining_ == 0) {
      // Half-open: re-admit at the current (deepest) rung. Pressure
      // still pinned past the floor will re-refuse and re-trip.
      decision_.breaker_open = false;
      decision_.admit = true;
      refusing_streak_ = 0;
      pending_move_ = LadderMove::kHold;
      dwell_ = 0;
      if (options_.journal != nullptr) {
        options_.journal->Append(
            obs::EventType::kBreakerReclose, snap.epoch, "governor",
            "half-open re-admit at rung " + std::to_string(decision_.rung));
      }
    }
    return decision_;
  }

  const LadderMove move = ClassifyPressure(options_.ladder, pressure);
  if (move != pending_move_) {
    pending_move_ = move;
    dwell_ = 1;
  } else {
    ++dwell_;
  }

  switch (move) {
    case LadderMove::kHold:
      decision_.admit = true;
      refusing_streak_ = 0;
      break;
    case LadderMove::kEscalate:
      if (dwell_ >= options_.ladder.dwell_epochs) {
        if (decision_.rung < max_rung_) {
          const size_t from = decision_.rung;
          MoveTo(decision_.rung + 1, snap.epoch);
          ++stats_.escalations;
          if (m_escalations_ != nullptr) m_escalations_->Increment();
          if (options_.journal != nullptr) {
            options_.journal->Append(
                obs::EventType::kRungEscalation, snap.epoch, "governor",
                "rung " + std::to_string(from) + " -> " +
                    std::to_string(decision_.rung));
          }
          dwell_ = 0;
        } else {
          // Past the floor: refuse new work rather than degrade below
          // the accuracy the engine is willing to vouch for.
          decision_.admit = false;
          ++stats_.refusal_epochs;
          if (m_refusals_ != nullptr) m_refusals_->Increment();
          ++refusing_streak_;
          if (refusing_streak_ >= options_.breaker_trip_epochs) {
            decision_.breaker_open = true;
            breaker_open_remaining_ = options_.breaker_cooldown_epochs;
            ++stats_.breaker_trips;
            if (m_breaker_trips_ != nullptr) {
              m_breaker_trips_->Increment();
            }
            if (options_.journal != nullptr) {
              options_.journal->Append(
                  obs::EventType::kBreakerTrip, snap.epoch, "governor",
                  "after " +
                      std::to_string(options_.breaker_trip_epochs) +
                      " refusal epochs at rung " +
                      std::to_string(decision_.rung));
            }
            refusing_streak_ = 0;
          }
        }
      }
      break;
    case LadderMove::kRelax:
      decision_.admit = true;
      refusing_streak_ = 0;
      if (dwell_ >= options_.ladder.dwell_epochs && decision_.rung > 0) {
        const size_t from = decision_.rung;
        MoveTo(decision_.rung - 1, snap.epoch);
        ++stats_.relaxations;
        if (m_relaxations_ != nullptr) m_relaxations_->Increment();
        if (options_.journal != nullptr) {
          options_.journal->Append(
              obs::EventType::kRungRelaxation, snap.epoch, "governor",
              "rung " + std::to_string(from) + " -> " +
                  std::to_string(decision_.rung));
        }
        dwell_ = 0;
      }
      break;
  }
  return decision_;
}

}  // namespace govern
}  // namespace ausdb
