#ifndef AUSDB_GOVERN_GOVERNOR_H_
#define AUSDB_GOVERN_GOVERNOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/govern/ladder.h"
#include "src/govern/signals.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace govern {

/// Options of the OverloadGovernor.
struct GovernorOptions {
  LadderPolicy ladder = LadderPolicy::Default();

  /// Next() calls per decision epoch at the GovernorGate. Decisions
  /// happen only at these boundaries, so the rung sequence is a pure
  /// function of the (call count, snapshot sequence) — never of a
  /// timer.
  size_t epoch_interval = 256;

  /// Circuit breaker: consecutive epochs spent in admission control
  /// (pressure pinned past the floor) before the operator is declared
  /// persistently overloaded and quarantined.
  size_t breaker_trip_epochs = 8;

  /// Epochs the breaker stays open before re-closing (half-open probe).
  /// During an open breaker the gate fails with kUnavailable, which the
  /// wrapping SupervisedScan retries with backoff and — if the overload
  /// persists through its retry budget — surfaces through its existing
  /// give-up/quarantine path.
  size_t breaker_cooldown_epochs = 16;

  /// When non-null, governor observability is mirrored into
  /// `ausdb_govern_*` metrics labeled `{plan=metrics_label}`.
  /// Write-only per the obs contract.
  obs::MetricRegistry* metrics = nullptr;
  std::string metrics_label = "plan";

  /// When non-null, every rung transition and breaker state change is
  /// journaled (kRungEscalation / kRungRelaxation / kBreakerTrip /
  /// kBreakerReclose) with the decision epoch as logical time.
  /// Write-only per the obs contract.
  obs::EventJournal* journal = nullptr;
};

/// What the gate does until the next epoch boundary.
struct GovernorDecision {
  size_t rung = 0;
  /// False = admission control: reject new work with kOverloaded.
  bool admit = true;
  /// True = circuit breaker open: the operator is quarantined
  /// (kUnavailable) until the cooldown elapses.
  bool breaker_open = false;
};

/// One rung change, for the determinism harness's transition log.
struct RungTransition {
  uint64_t epoch = 0;
  size_t from = 0;
  size_t to = 0;

  bool operator==(const RungTransition& other) const = default;
};

/// Counters of governor activity.
struct GovernorStats {
  uint64_t epochs = 0;
  size_t escalations = 0;
  size_t relaxations = 0;
  /// Epochs spent refusing admission (pressure past the floor).
  size_t refusal_epochs = 0;
  size_t breaker_trips = 0;
  /// Epochs spent at each ladder rung (indexed by rung, sized to the
  /// ladder). Sums to `epochs`; the accuracy ledger reads this to show
  /// how much of a run actually executed at degraded precision.
  std::vector<uint64_t> rung_epochs;
};

/// \brief The engine-wide overload governor: maps observed pressure
/// through the degradation ladder, with hysteresis, an accuracy floor,
/// admission control past the floor, and a circuit breaker for
/// persistent overload.
///
/// Determinism contract: Observe() is called once per decision epoch
/// and its result depends only on (snapshot, current rung, dwell
/// counters) — all integer state advanced by epochs, never wall clock.
/// Two runs fed the same snapshot sequence produce the same decision
/// sequence, which the scripted-load harness asserts literally via
/// transitions().
class OverloadGovernor {
 public:
  /// Invalid options (see LadderPolicy::Validate) are reported by
  /// returning the error from Validate(); callers that construct
  /// directly get the policy clamped to a validated default.
  explicit OverloadGovernor(GovernorOptions options);

  /// Feeds the epoch's signal snapshot; returns the decision in force
  /// until the next epoch.
  GovernorDecision Observe(const SignalSnapshot& snap);

  const GovernorDecision& decision() const { return decision_; }
  const GovernorStats& stats() const { return stats_; }
  const GovernorOptions& options() const { return options_; }

  /// The spec of `rung` (clamped to the ladder).
  const RungSpec& rung_spec(size_t rung) const;

  /// Every rung change so far, in epoch order — the harness's
  /// determinism witness.
  const std::vector<RungTransition>& transitions() const {
    return transitions_;
  }

 private:
  void MoveTo(size_t rung, uint64_t epoch);

  GovernorOptions options_;
  size_t max_rung_ = 0;  ///< deepest rung the accuracy floor permits
  GovernorDecision decision_;
  GovernorStats stats_;
  std::vector<RungTransition> transitions_;

  /// Consecutive epochs the pressure classification has pointed the
  /// same way (reset on any change of direction).
  LadderMove pending_move_ = LadderMove::kHold;
  size_t dwell_ = 0;

  /// Consecutive refusal epochs (breaker trip counter) and remaining
  /// open epochs.
  size_t refusing_streak_ = 0;
  size_t breaker_open_remaining_ = 0;

  /// Registry-owned metrics; null when options_.metrics is null.
  obs::Gauge* m_rung_ = nullptr;
  obs::Gauge* m_pressure_milli_ = nullptr;
  obs::Counter* m_escalations_ = nullptr;
  obs::Counter* m_relaxations_ = nullptr;
  obs::Counter* m_refusals_ = nullptr;
  obs::Counter* m_breaker_trips_ = nullptr;
  /// Per-rung epoch occupancy, resolved once at construction (one
  /// counter per ladder rung, labeled {plan,rung}) so the per-epoch
  /// tick is a single pointer increment.
  std::vector<obs::Counter*> m_rung_epochs_;
};

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_GOVERNOR_H_
