#ifndef AUSDB_GOVERN_SIGNALS_H_
#define AUSDB_GOVERN_SIGNALS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/memory_budget.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace ausdb {
namespace govern {

/// \brief One coherent reading of the engine's overload signals, taken
/// at a decision epoch boundary.
///
/// The obs layer's rule is that the data path never reads metrics back;
/// the governor is the single sanctioned exception, and this struct is
/// the narrow waist it reads through: a snapshot is taken once per
/// epoch (a tuple-count boundary, never a timer), the decision is a
/// pure function of the snapshot, and the scripted-load harness proves
/// determinism by substituting scripted snapshots for live ones.
struct SignalSnapshot {
  /// Decision epoch index this snapshot was taken for.
  uint64_t epoch = 0;

  /// Prefetch/transfer ring occupancy. capacity == 0 disables the
  /// queue-pressure component.
  size_t queue_depth = 0;
  size_t queue_capacity = 0;

  /// Cumulative producer-side backpressure events (blocking-push waits
  /// plus non-blocking TryPush rejections).
  uint64_t backpressure_events = 0;

  /// Cumulative tuples shed by overflow policies (the thing the
  /// governor exists to prevent).
  uint64_t shed_tuples = 0;

  /// Per-plan memory budget occupancy. limit == 0 disables the
  /// memory-pressure component.
  size_t memory_used_bytes = 0;
  size_t memory_limit_bytes = 0;

  /// Sampled per-tuple operator latency (seconds), and the latency SLO
  /// it is judged against. slo == 0 disables the latency component.
  double sampled_latency_seconds = 0.0;
  double latency_slo_seconds = 0.0;
};

/// Queue occupancy in [0, 1]; 0 when no queue signal is bound.
double QueuePressure(const SignalSnapshot& snap);

/// Budget occupancy in [0, 1]; 0 when no budget signal is bound.
double MemoryPressure(const SignalSnapshot& snap);

/// latency / SLO, clamped to [0, 2]; 0 when no SLO is set. Values above
/// 1 mean the SLO is blown.
double LatencyPressure(const SignalSnapshot& snap);

/// \brief The scalar pressure the ladder is driven by: the max of the
/// component pressures (an engine is as overloaded as its most
/// overloaded resource). Pure function of the snapshot; >= 1.0 means at
/// or past capacity.
double Pressure(const SignalSnapshot& snap);

/// \brief Where the governor's snapshots come from: live gauges in
/// production, a deterministic script in the harness.
class SignalSource {
 public:
  virtual ~SignalSource() = default;

  /// The snapshot for decision epoch `epoch`. Called exactly once per
  /// epoch, at a batch boundary.
  virtual SignalSnapshot Snapshot(uint64_t epoch) = 0;
};

/// \brief Production source: reads the registry-owned gauges/counters
/// the stream and engine layers already maintain, the per-plan
/// MemoryBudget, and a sampled-latency reading derived from the
/// injectable obs::Clock (seconds elapsed between epoch snapshots,
/// divided by the tuples the epoch covered).
class LiveSignalSource final : public SignalSource {
 public:
  struct Bindings {
    /// Queue signals (e.g. the AsyncPrefetchSource ring). Any may be
    /// null.
    const obs::Gauge* queue_depth = nullptr;
    size_t queue_capacity = 0;
    const obs::Counter* push_waits = nullptr;
    const obs::Counter* try_rejections = nullptr;

    /// Cumulative shed counter (e.g. ausdb_engine_reorder_shed_total).
    const obs::Counter* shed = nullptr;

    /// Per-plan budget; null disables memory pressure.
    const MemoryBudget* budget = nullptr;

    /// Latency SLO the sampled per-tuple latency is judged against;
    /// 0 disables latency pressure.
    double latency_slo_seconds = 0.0;

    /// Tuples per decision epoch (the governor's epoch_interval) —
    /// turns per-epoch elapsed time into per-tuple latency.
    size_t tuples_per_epoch = 1;
  };

  explicit LiveSignalSource(Bindings bindings,
                            const obs::Clock* clock =
                                obs::SteadyClock::Instance());

  SignalSnapshot Snapshot(uint64_t epoch) override;

 private:
  Bindings bindings_;
  const obs::Clock* clock_;
  uint64_t last_epoch_nanos_ = 0;
  bool has_last_ = false;
};

/// \brief Deterministic source: replays a fixed per-epoch snapshot
/// script. Epochs beyond the script repeat the last entry. The
/// scripted-load equivalence harness is built on this — identical
/// scripts must yield identical rung sequences and bit-identical
/// output, across runs and thread counts.
class ScriptedSignalSource final : public SignalSource {
 public:
  explicit ScriptedSignalSource(std::vector<SignalSnapshot> script);

  SignalSnapshot Snapshot(uint64_t epoch) override;

 private:
  std::vector<SignalSnapshot> script_;
};

}  // namespace govern
}  // namespace ausdb

#endif  // AUSDB_GOVERN_SIGNALS_H_
