#include "src/govern/signals.h"

#include <algorithm>

namespace ausdb {
namespace govern {

double QueuePressure(const SignalSnapshot& snap) {
  if (snap.queue_capacity == 0) return 0.0;
  return std::min(1.0, static_cast<double>(snap.queue_depth) /
                           static_cast<double>(snap.queue_capacity));
}

double MemoryPressure(const SignalSnapshot& snap) {
  if (snap.memory_limit_bytes == 0) return 0.0;
  return std::min(1.0, static_cast<double>(snap.memory_used_bytes) /
                           static_cast<double>(snap.memory_limit_bytes));
}

double LatencyPressure(const SignalSnapshot& snap) {
  if (snap.latency_slo_seconds <= 0.0) return 0.0;
  return std::clamp(snap.sampled_latency_seconds / snap.latency_slo_seconds,
                    0.0, 2.0);
}

double Pressure(const SignalSnapshot& snap) {
  return std::max({QueuePressure(snap), MemoryPressure(snap),
                   LatencyPressure(snap)});
}

LiveSignalSource::LiveSignalSource(Bindings bindings,
                                   const obs::Clock* clock)
    : bindings_(bindings), clock_(clock) {
  if (bindings_.tuples_per_epoch == 0) bindings_.tuples_per_epoch = 1;
}

SignalSnapshot LiveSignalSource::Snapshot(uint64_t epoch) {
  SignalSnapshot snap;
  snap.epoch = epoch;
  if (bindings_.queue_depth != nullptr) {
    const int64_t depth = bindings_.queue_depth->Value();
    snap.queue_depth = depth > 0 ? static_cast<size_t>(depth) : 0;
    snap.queue_capacity = bindings_.queue_capacity;
  }
  if (bindings_.push_waits != nullptr) {
    snap.backpressure_events += bindings_.push_waits->Value();
  }
  if (bindings_.try_rejections != nullptr) {
    snap.backpressure_events += bindings_.try_rejections->Value();
  }
  if (bindings_.shed != nullptr) {
    snap.shed_tuples = bindings_.shed->Value();
  }
  if (bindings_.budget != nullptr) {
    snap.memory_used_bytes = bindings_.budget->used();
    snap.memory_limit_bytes = bindings_.budget->limit();
  }
  snap.latency_slo_seconds = bindings_.latency_slo_seconds;
  // Sampled per-tuple latency: seconds this epoch took divided by the
  // tuples it covered. Read through the injectable clock, so tests can
  // script exact latencies with a FakeClock.
  const uint64_t now = clock_->NowNanos();
  if (has_last_ && bindings_.latency_slo_seconds > 0.0) {
    const double elapsed = obs::NanosToSeconds(now - last_epoch_nanos_);
    snap.sampled_latency_seconds =
        elapsed / static_cast<double>(bindings_.tuples_per_epoch);
  }
  last_epoch_nanos_ = now;
  has_last_ = true;
  return snap;
}

ScriptedSignalSource::ScriptedSignalSource(
    std::vector<SignalSnapshot> script)
    : script_(std::move(script)) {
  if (script_.empty()) script_.push_back(SignalSnapshot{});
}

SignalSnapshot ScriptedSignalSource::Snapshot(uint64_t epoch) {
  const size_t idx =
      std::min<size_t>(static_cast<size_t>(epoch), script_.size() - 1);
  SignalSnapshot snap = script_[idx];
  snap.epoch = epoch;
  return snap;
}

}  // namespace govern
}  // namespace ausdb
