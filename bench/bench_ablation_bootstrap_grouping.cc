// Ablation: the paper's d.f.-resample grouping (BOOTSTRAP-ACCURACY-INFO,
// Theorem 2) vs a classic single-sample percentile bootstrap applied to
// the n de facto observations directly.
//
// Workload: route total-delay queries (20 segments, n = 20 per segment).
// Both methods produce a 90% interval for the result mean; we compare
// average lengths and coverage against population ground truth.

#include <vector>

#include "bench/figure_common.h"
#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/learner.h"
#include "src/expr/evaluator.h"
#include "src/stats/descriptive.h"
#include "src/workload/cartel.h"

using namespace ausdb;

int main() {
  bench::Banner("Ablation",
                "d.f.-grouped bootstrap vs classic single-sample bootstrap");

  constexpr size_t kN = 20;
  constexpr size_t kM = 20 * kN;
  constexpr int kTrials = 150;

  workload::CartelOptions copts;
  copts.num_segments = 120;
  copts.observations_per_segment = 800;
  copts.route_length = 20;
  workload::CartelSimulator sim(copts);
  Rng rng(61);

  double grouped_len = 0.0, classic_len = 0.0;
  size_t grouped_hits = 0, classic_hits = 0;

  for (int t = 0; t < kTrials; ++t) {
    const auto route = sim.MakeRoute(rng);
    const double truth = sim.TrueRouteMean(route);

    // The n de facto observations of the route delay (Definition 2).
    auto df_obs = sim.RouteDelayObservations(route, kN, rng);

    // Classic percentile bootstrap straight off the d.f. sample.
    auto classic = bootstrap::ClassicPercentileBootstrap(
        *df_obs, 1000, 0.9,
        [](std::span<const double> s) { return stats::Mean(s); }, rng);
    classic_len += classic->Length();
    if (classic->Contains(truth)) ++classic_hits;

    // The paper's method: Monte Carlo value sequence from the learned
    // per-segment distributions, grouped into r = m/n d.f. resamples.
    std::vector<std::string> names;
    std::vector<expr::Value> row;
    expr::ExprPtr sum;
    for (size_t i = 0; i < route.size(); ++i) {
      names.push_back("seg" + std::to_string(i));
      auto sample = sim.DrawSample(route[i], kN, rng);
      auto learned = dist::LearnEmpirical(*sample);
      row.emplace_back(dist::RandomVar(*learned));
      auto col = expr::Col(names.back());
      sum = sum == nullptr ? col : expr::Add(sum, col);
    }
    expr::EvalOptions opts;
    opts.prefer_closed_form = false;
    opts.mc_samples = kM;
    opts.seed = rng.NextUint64();
    expr::Evaluator eval(opts);
    auto value = eval.Evaluate(*sum, expr::Row{&names, &row});
    const auto& mc_values = *value->random_var()->raw_sample();
    auto grouped = bootstrap::BootstrapAccuracyInfo(mc_values, kN, 0.9);
    grouped_len += grouped->mean_ci->Length();
    if (grouped->mean_ci->Contains(truth)) ++grouped_hits;
  }

  bench::PrintRow({"method", "avg_mean_CI_len", "coverage"}, 20);
  bench::PrintRow({"df_grouped(paper)",
                   bench::Fmt(grouped_len / kTrials, 3),
                   bench::Fmt(static_cast<double>(grouped_hits) / kTrials,
                              3)},
                  20);
  bench::PrintRow({"classic_bootstrap",
                   bench::Fmt(classic_len / kTrials, 3),
                   bench::Fmt(static_cast<double>(classic_hits) / kTrials,
                              3)},
                  20);
  std::printf(
      "\nReading: both deliver comparable intervals; the paper's grouped "
      "method\nneeds only the query processor's Monte Carlo output, "
      "while the classic\nbootstrap needs the raw d.f. observations "
      "(which query results rarely\nretain).\n");
  return 0;
}
