// Figure 4(a): sample size n vs 90% confidence-interval length of the
// mean parameter mu, on the (simulated) road-delay dataset.
//
// Methodology (paper Section V-B): pick 100 road segments with large
// populations (>= 600 observations); treat the full population as ground
// truth; draw small samples without replacement and compute the Lemma 2
// interval. The plotted series is the average interval length per n.

#include "bench/figure_common.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/common/rng.h"
#include "src/workload/cartel.h"

using namespace ausdb;

int main() {
  bench::Banner("Figure 4(a)",
                "sample size vs 90% CI length of mu (road delays)");

  workload::CartelOptions opts;
  opts.num_segments = 100;
  opts.observations_per_segment = 800;
  workload::CartelSimulator sim(opts);
  Rng rng(41);

  constexpr int kTrialsPerSegment = 20;
  bench::PrintRow({"n", "avg_mu_CI_length"});
  for (size_t n : {10, 20, 30, 40, 50, 60, 70, 80}) {
    double total = 0.0;
    size_t count = 0;
    for (size_t seg = 0; seg < sim.num_segments(); ++seg) {
      for (int trial = 0; trial < kTrialsPerSegment; ++trial) {
        auto sample = sim.DrawSample(seg, n, rng);
        auto ci = accuracy::MeanIntervalFromSample(*sample, 0.9);
        total += ci->Length();
        ++count;
      }
    }
    bench::PrintRow({std::to_string(n),
                     bench::Fmt(total / static_cast<double>(count), 3)});
  }
  std::printf(
      "\nExpected shape (paper): monotone decrease, roughly proportional "
      "to 1/sqrt(n).\n");
  return 0;
}
