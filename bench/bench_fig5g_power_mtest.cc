// Figure 5(g): power of the coupled mTest vs the effect size delta, for
// the five synthetic families (n = 20, alpha1 = alpha2 = 0.05).
//
// Per the paper's setup, the tested constant is c = (1 - delta) * mu so
// that H1 ("E(X) > c") is true; the power is the rate of TRUE returns.
// Uniform (tiny variance) and gamma (fast-decaying relative tail) gain
// power fastest — the effect the paper calls out.

#include <vector>

#include "bench/figure_common.h"
#include "src/dist/learner.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/hypothesis/power.h"
#include "src/workload/synthetic.h"

using namespace ausdb;

int main() {
  bench::Banner("Figure 5(g)",
                "power of coupled mTest vs delta (n=20, five families)");

  constexpr size_t kN = 20;
  constexpr size_t kTrials = 2000;
  Rng rng(57);

  std::vector<std::string> header = {"delta"};
  for (workload::Family f : workload::kAllFamilies) {
    header.emplace_back(workload::FamilyToString(f));
  }
  bench::PrintRow(header, 13);

  for (double delta : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    std::vector<std::string> row = {bench::Fmt(delta, 1)};
    for (workload::Family f : workload::kAllFamilies) {
      const double mu = workload::FamilyMean(f);
      const double c = (1.0 - delta) * mu;
      auto run_once = [&]() {
        const auto sample = workload::SampleFamilyMany(rng, f, kN);
        auto learned = dist::LearnGaussian(sample);
        dist::RandomVar x(*learned);
        auto outcome = hypothesis::CoupledMTest(
            x, hypothesis::TestOp::kGreater, c, 0.05, 0.05);
        return outcome.ok() ? *outcome : hypothesis::TestOutcome::kUnsure;
      };
      const auto est = hypothesis::EstimatePower(kTrials, run_once);
      row.push_back(bench::Fmt(est.Power(), 3));
    }
    bench::PrintRow(row, 13);
  }
  std::printf(
      "\nExpected shape (paper): power rises with delta for every "
      "family; uniform\n(variance 1/12) and gamma rise fastest.\n");
  return 0;
}
