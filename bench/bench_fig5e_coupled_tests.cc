// Figure 5(e): the same experiment as Figure 5(d) but with the
// COUPLED-TESTS technique (alpha1 = alpha2 = 0.05): both error rates are
// now controlled, and indecision surfaces as UNSURE instead of as silent
// errors. UNSURE counts fall as the sample size grows.

#include <vector>

#include "bench/figure_common.h"
#include "src/dist/learner.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/workload/cartel.h"

using namespace ausdb;

namespace {

constexpr double kAlpha1 = 0.05;
constexpr double kAlpha2 = 0.05;

dist::RandomVar LearnRoute(const workload::CartelSimulator& sim,
                           const std::vector<size_t>& route, size_t n,
                           Rng& rng) {
  auto obs = sim.RouteDelayObservations(route, n, rng);
  auto learned = dist::LearnGaussian(*obs);
  return dist::RandomVar(*learned);
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 5(e)",
      "coupled-tests mdTest: errors and UNSUREs vs sample size");

  workload::CartelOptions opts;
  opts.num_segments = 200;
  opts.observations_per_segment = 800;
  opts.route_length = 20;
  workload::CartelSimulator sim(opts);
  Rng rng(55);

  // Close-but-decidable pairs: the differing segments are ~90 ranks
  // apart in the true-mean ordering, i.e. the routes' mean total delays
  // differ by a few percent — small enough that small samples cannot
  // tell them apart, large enough that n ~ 80 can.
  std::vector<workload::CartelSimulator::RoutePair> pairs;
  for (int i = 0; i < 100; ++i) {
    pairs.push_back(sim.MakeRoutePairWithRankGap(rng, 90));
  }

  bench::PrintRow({"n", "false_pos", "false_neg", "unsure",
                   "errors_no_sig"},
                  15);
  for (size_t n : {10, 20, 30, 40, 60, 80}) {
    size_t fp = 0, fn = 0, unsure = 0, plain_errors = 0;
    for (const auto& pair : pairs) {
      // H0 true.
      {
        const auto x = LearnRoute(sim, pair.lesser, n, rng);
        const auto y = LearnRoute(sim, pair.greater, n, rng);
        auto outcome = hypothesis::CoupledMdTest(
            x, y, hypothesis::TestOp::kGreater, 0.0, kAlpha1, kAlpha2);
        if (outcome.ok()) {
          if (*outcome == hypothesis::TestOutcome::kTrue) ++fp;
          if (*outcome == hypothesis::TestOutcome::kUnsure) ++unsure;
        }
        if (x.Mean() > y.Mean()) ++plain_errors;
      }
      // H1 true.
      {
        const auto x = LearnRoute(sim, pair.greater, n, rng);
        const auto y = LearnRoute(sim, pair.lesser, n, rng);
        auto outcome = hypothesis::CoupledMdTest(
            x, y, hypothesis::TestOp::kGreater, 0.0, kAlpha1, kAlpha2);
        if (outcome.ok()) {
          if (*outcome == hypothesis::TestOutcome::kFalse) ++fn;
          if (*outcome == hypothesis::TestOutcome::kUnsure) ++unsure;
        }
        if (!(x.Mean() > y.Mean())) ++plain_errors;
      }
    }
    bench::PrintRow({std::to_string(n), std::to_string(fp),
                     std::to_string(fn), std::to_string(unsure),
                     std::to_string(plain_errors)},
                    15);
  }
  std::printf(
      "\nExpected shape (paper): both error kinds now respect the 5%% "
      "specification\n(Theorem 3); UNSURE counts (out of 200) decrease "
      "as n grows.\n");
  return 0;
}
