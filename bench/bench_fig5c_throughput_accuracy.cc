// Figure 5(c): maximum stream throughput (tuples/second) of
//  (1) query processing only,
//  (2) query processing + analytical accuracy information, and
//  (3) query processing + bootstrap accuracy information.
//
// Setup per the paper (Section V-C): each stream item carries a Gaussian
// learned from 20 generated data points; the query is a count-based
// sliding-window AVG with window size 1000; accuracy information (on mu
// and sigma^2) is computed for each window result.

#include <memory>

#include "bench/figure_common.h"
#include "src/common/logging.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/window_aggregate.h"
#include "src/stream/sources.h"
#include "src/stream/throughput.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 200000;
constexpr size_t kPointsPerItem = 20;
constexpr size_t kWindow = 1000;

engine::OperatorPtr MakePipeline(bool annotate,
                                 accuracy::AccuracyMethod method) {
  auto source = stream::MakeLearnedGaussianSource(
      "x", kTuples, kPointsPerItem, 10.0, 2.0, /*seed=*/53);
  auto agg = engine::WindowAggregate::Make(std::move(source), "x", "avg_x",
                                           {.window_size = kWindow});
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  if (!annotate) return std::move(*agg);
  engine::AccuracyAnnotatorOptions opts;
  opts.method = method;
  opts.confidence = 0.9;
  opts.bootstrap_resamples = 20;
  return std::make_unique<engine::AccuracyAnnotator>(std::move(*agg),
                                                     opts);
}

double MeasureTuplesPerSecond(engine::OperatorPtr plan) {
  return bench::MeasureTuplesPerSecond(*plan);
}

}  // namespace

int main() {
  bench::Banner("Figure 5(c)",
                "throughput impact of accuracy information");

  const double qp_only = MeasureTuplesPerSecond(
      MakePipeline(false, accuracy::AccuracyMethod::kAnalytical));
  const double analytical = MeasureTuplesPerSecond(
      MakePipeline(true, accuracy::AccuracyMethod::kAnalytical));
  const double bootstrap = MeasureTuplesPerSecond(
      MakePipeline(true, accuracy::AccuracyMethod::kBootstrap));

  bench::PrintRow({"pipeline", "tuples_per_sec", "relative"}, 18);
  bench::PrintRow({"QP_only", bench::FmtInt(qp_only), "1.000"}, 18);
  bench::PrintRow({"analytical", bench::FmtInt(analytical),
                   bench::Fmt(analytical / qp_only, 3)},
                  18);
  bench::PrintRow({"bootstrap", bench::FmtInt(bootstrap),
                   bench::Fmt(bootstrap / qp_only, 3)},
                  18);
  std::printf(
      "\nExpected shape (paper): QP-only fastest; analytical close "
      "behind;\nbootstrap somewhat slower; all the same order of "
      "magnitude.\n");
  return 0;
}
