// Shared helpers for the per-figure reproduction harnesses.
//
// Each bench_fig* binary regenerates one panel of the paper's evaluation
// (Figures 4(a)-(d) and 5(a)-(h)) and prints the series the paper plots.
// Absolute values depend on the simulated substrate; EXPERIMENTS.md
// records the paper-vs-measured shape comparison.

#ifndef AUSDB_BENCH_FIGURE_COMMON_H_
#define AUSDB_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/engine/executor.h"
#include "src/engine/operator.h"
#include "src/stream/throughput.h"

namespace ausdb {
namespace bench {

/// Prints a header banner naming the figure.
inline void Banner(const std::string& figure, const std::string& title) {
  std::printf("=== %s: %s ===\n", figure.c_str(), title.c_str());
}

/// Prints one row of a fixed-width table.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Drains `plan` to completion under a ThroughputMeter and returns the
/// measured tuples/second. The one throughput-measurement idiom shared
/// by every figure harness.
inline double MeasureTuplesPerSecond(engine::Operator& plan) {
  stream::ThroughputMeter meter;
  meter.Start();
  auto count = engine::Drain(plan);
  AUSDB_CHECK(count.ok()) << count.status().ToString();
  meter.Count(*count);
  meter.Stop();
  return meter.TuplesPerSecond();
}

}  // namespace bench
}  // namespace ausdb

#endif  // AUSDB_BENCH_FIGURE_COMMON_H_
