// Shared helpers for the per-figure reproduction harnesses.
//
// Each bench_fig* binary regenerates one panel of the paper's evaluation
// (Figures 4(a)-(d) and 5(a)-(h)) and prints the series the paper plots.
// Absolute values depend on the simulated substrate; EXPERIMENTS.md
// records the paper-vs-measured shape comparison.

#ifndef AUSDB_BENCH_FIGURE_COMMON_H_
#define AUSDB_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/engine/executor.h"
#include "src/engine/operator.h"
#include "src/stream/throughput.h"

namespace ausdb {
namespace bench {

/// Prints a header banner naming the figure.
inline void Banner(const std::string& figure, const std::string& title) {
  std::printf("=== %s: %s ===\n", figure.c_str(), title.c_str());
}

/// Prints one row of a fixed-width table.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Drains `plan` to completion under a ThroughputMeter and returns the
/// measured tuples/second. The one throughput-measurement idiom shared
/// by every figure harness.
inline double MeasureTuplesPerSecond(engine::Operator& plan) {
  stream::ThroughputMeter meter;
  meter.Start();
  auto count = engine::Drain(plan);
  AUSDB_CHECK(count.ok()) << count.status().ToString();
  meter.Count(*count);
  meter.Stop();
  return meter.TuplesPerSecond();
}

/// \brief Accumulates benchmark results as rows of named numbers and
/// serializes the repo's `BENCH_<name>.json` trajectory format:
///
///   {"bench": "<name>",
///    "rows": [{"axis": 0.0, "metric": 123.4, ...}, ...]}
///
/// Every bench that wants its results tracked across commits builds one
/// of these alongside its printed table and calls WriteFile at exit.
/// Numbers are emitted with %.17g, so the file round-trips doubles and
/// diffs cleanly when a run is bit-identical.
class JsonResultsWriter {
 public:
  using Row = std::vector<std::pair<std::string, double>>;

  explicit JsonResultsWriter(std::string bench)
      : bench_(std::move(bench)) {}

  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n  \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out += (r == 0 ? "\n" : ",\n");
      out += "    {";
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        if (c != 0) out += ", ";
        char buf[96];
        std::snprintf(buf, sizeof(buf), "\"%s\": %.17g",
                      rows_[r][c].first.c_str(), rows_[r][c].second);
        out += buf;
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  /// Writes the JSON document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = ToJson();
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return (std::fclose(f) == 0) && ok;
  }

 private:
  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace ausdb

#endif  // AUSDB_BENCH_FIGURE_COMMON_H_
