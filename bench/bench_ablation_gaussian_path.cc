// Ablation: the evaluator's closed-form Gaussian fast path vs forced
// Monte Carlo, on a linear expression over Gaussian columns
// ((a + b) / 2 - c). Reports evaluations/second and the moment error of
// the Monte Carlo path against the exact closed form.

#include <cmath>
#include <vector>

#include "bench/figure_common.h"
#include "src/dist/gaussian.h"
#include "src/expr/evaluator.h"
#include "src/stream/throughput.h"

using namespace ausdb;

int main() {
  bench::Banner("Ablation", "closed-form Gaussian path vs Monte Carlo");

  const std::vector<std::string> names = {"a", "b", "c"};
  const std::vector<expr::Value> row = {
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(10.0, 4.0), 20)),
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(6.0, 1.0), 30)),
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(2.0, 9.0), 25)),
  };
  const auto e = expr::Sub(
      expr::Div(expr::Add(expr::Col("a"), expr::Col("b")), expr::Lit(2.0)),
      expr::Col("c"));
  // Exact: mean (10+6)/2 - 2 = 6; var (4+1)/4 + 9 = 10.25.

  const expr::Row r{&names, &row};

  auto measure = [&](bool closed_form, size_t mc_samples, size_t reps,
                     double* mean_err, double* var_err) {
    expr::EvalOptions opts;
    opts.prefer_closed_form = closed_form;
    opts.mc_samples = mc_samples;
    expr::Evaluator eval(opts);
    stream::ThroughputMeter meter;
    meter.Start();
    double worst_mean = 0.0, worst_var = 0.0;
    for (size_t i = 0; i < reps; ++i) {
      auto v = eval.Evaluate(*e, r);
      const auto rv = *v->random_var();
      worst_mean = std::max(worst_mean, std::abs(rv.Mean() - 6.0));
      worst_var = std::max(worst_var, std::abs(rv.Variance() - 10.25));
      meter.Count();
    }
    meter.Stop();
    *mean_err = worst_mean;
    *var_err = worst_var;
    return meter.TuplesPerSecond();
  };

  double mean_err = 0.0, var_err = 0.0;
  const double closed = measure(true, 0, 200000, &mean_err, &var_err);
  bench::PrintRow({"path", "evals_per_sec", "max_mean_err",
                   "max_var_err"},
                  16);
  bench::PrintRow({"closed_form", bench::FmtInt(closed),
                   bench::Fmt(mean_err, 6), bench::Fmt(var_err, 6)},
                  16);
  for (size_t m : {400, 2000, 10000}) {
    const double mc = measure(false, m, 2000, &mean_err, &var_err);
    bench::PrintRow({"mc_" + std::to_string(m), bench::FmtInt(mc),
                     bench::Fmt(mean_err, 4), bench::Fmt(var_err, 4)},
                    16);
  }
  std::printf(
      "\nReading: the closed form is exact and orders of magnitude "
      "faster; Monte\nCarlo error shrinks like 1/sqrt(m) at linear cost "
      "in m. The evaluator\ntakes the closed form automatically for "
      "linear Gaussian expressions.\n");
  return 0;
}
