// Ablation: Lemma 1's Wald/Wilson branch. The paper switches from the
// normal-approximation (Wald) interval to the Wilson score interval when
// np < 4 or n(1-p) < 4. This bench shows why: Wald coverage collapses
// for small np while Wilson stays near nominal.

#include "bench/figure_common.h"
#include "src/accuracy/proportion_ci.h"
#include "src/common/rng.h"
#include "src/stats/random_variates.h"

using namespace ausdb;

int main() {
  bench::Banner("Ablation", "Wald vs Wilson proportion intervals (90%)");

  Rng rng(60);
  constexpr int kTrials = 20000;

  bench::PrintRow({"n", "true_p", "wald_cover", "wilson_cover",
                   "wald_len", "wilson_len", "lemma1_branch"},
                  14);
  for (size_t n : {10, 20, 50}) {
    for (double p : {0.05, 0.1, 0.2, 0.5}) {
      size_t wald_hits = 0, wilson_hits = 0;
      double wald_len = 0.0, wilson_len = 0.0;
      for (int t = 0; t < kTrials; ++t) {
        const double p_hat =
            static_cast<double>(stats::SampleBinomial(rng, n, p)) /
            static_cast<double>(n);
        auto wald = accuracy::WaldProportionInterval(p_hat, n, 0.9);
        auto wilson = accuracy::WilsonProportionInterval(p_hat, n, 0.9);
        if (wald->Contains(p)) ++wald_hits;
        if (wilson->Contains(p)) ++wilson_hits;
        wald_len += wald->Length();
        wilson_len += wilson->Length();
      }
      bench::PrintRow(
          {std::to_string(n), bench::Fmt(p, 2),
           bench::Fmt(static_cast<double>(wald_hits) / kTrials, 3),
           bench::Fmt(static_cast<double>(wilson_hits) / kTrials, 3),
           bench::Fmt(wald_len / kTrials, 3),
           bench::Fmt(wilson_len / kTrials, 3),
           accuracy::WaldConditionHolds(p, n) ? "wald" : "wilson"},
          14);
    }
  }
  std::printf(
      "\nReading: where Lemma 1 selects Wilson (np < 4), Wald coverage "
      "falls well\nbelow the nominal 90%%; Wilson holds it. Where Wald "
      "is selected, the two\nagree and Wald is slightly shorter.\n");
  return 0;
}
