// Microbenchmarks (google-benchmark) of the accuracy-engine primitives:
// quantile functions, interval construction, hypothesis tests, bootstrap
// and distribution learning. These are the per-tuple costs behind the
// throughput figures 5(c)/5(f).

#include <benchmark/benchmark.h>

#include "src/accuracy/accuracy_info.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/gaussian.h"
#include "src/dist/learner.h"
#include "src/expr/evaluator.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/stats/quantiles.h"
#include "src/stats/random_variates.h"

using namespace ausdb;

namespace {

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.0123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::NormalQuantile(p));
    p = p < 0.99 ? p + 1e-4 : 0.0123;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_StudentTQuantile(benchmark::State& state) {
  double p = 0.0123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::StudentTQuantile(p, 19.0));
    p = p < 0.99 ? p + 1e-4 : 0.0123;
  }
}
BENCHMARK(BM_StudentTQuantile);

void BM_ChiSquareQuantile(benchmark::State& state) {
  double p = 0.0123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ChiSquareQuantile(p, 19.0));
    p = p < 0.99 ? p + 1e-4 : 0.0123;
  }
}
BENCHMARK(BM_ChiSquareQuantile);

void BM_MeanInterval(benchmark::State& state) {
  // Cached-percentile fast path: same (n, confidence) every call, as in
  // the streaming pipeline.
  for (auto _ : state) {
    benchmark::DoNotOptimize(accuracy::MeanInterval(10.0, 2.0, 20, 0.9));
  }
}
BENCHMARK(BM_MeanInterval);

void BM_ProportionInterval(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(accuracy::ProportionInterval(0.3, 20, 0.9));
  }
}
BENCHMARK(BM_ProportionInterval);

void BM_AnalyticalAccuracyGaussian(benchmark::State& state) {
  dist::GaussianDist g(10.0, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accuracy::AnalyticalAccuracy(g, 20, 0.9));
  }
}
BENCHMARK(BM_AnalyticalAccuracyGaussian);

void BM_BootstrapFromDistribution(benchmark::State& state) {
  dist::GaussianDist g(10.0, 4.0);
  Rng rng(1);
  const size_t r = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bootstrap::BootstrapAccuracyFromDistribution(g, 20, r, 0.9, rng));
  }
}
BENCHMARK(BM_BootstrapFromDistribution)->Arg(10)->Arg(20)->Arg(50);

void BM_CoupledMTest(benchmark::State& state) {
  hypothesis::SampleStatistics s{10.2, 2.0, 20};
  for (auto _ : state) {
    auto outcome = hypothesis::CoupledTests(
        [&s](hypothesis::TestOp op, double alpha) {
          return hypothesis::MeanTest(s, op, 10.0, alpha);
        },
        hypothesis::TestOp::kGreater, 0.05, 0.05);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CoupledMTest);

void BM_LearnGaussian20(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> sample(20);
  for (auto _ : state) {
    for (double& v : sample) v = stats::SampleNormal(rng, 10.0, 2.0);
    benchmark::DoNotOptimize(dist::LearnGaussian(sample));
  }
}
BENCHMARK(BM_LearnGaussian20);

void BM_LearnHistogram(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> sample(static_cast<size_t>(state.range(0)));
  for (double& v : sample) v = stats::SampleNormal(rng, 10.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::LearnHistogram(sample, {}));
  }
}
BENCHMARK(BM_LearnHistogram)->Arg(20)->Arg(100)->Arg(1000);

void BM_PredicateColumnVsConstant(benchmark::State& state) {
  const std::vector<std::string> names = {"x"};
  const std::vector<expr::Value> values = {expr::Value(dist::RandomVar(
      std::make_shared<dist::GaussianDist>(10.0, 4.0), 20))};
  const expr::Row row{&names, &values};
  const auto pred = expr::Gt(expr::Col("x"), expr::Lit(9.0));
  expr::Evaluator eval;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluatePredicate(*pred, row));
  }
}
BENCHMARK(BM_PredicateColumnVsConstant);

void BM_MonteCarloExpression(benchmark::State& state) {
  const std::vector<std::string> names = {"x", "y"};
  const std::vector<expr::Value> values = {
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(10.0, 4.0), 20)),
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(5.0, 1.0), 20))};
  const expr::Row row{&names, &values};
  const auto e = expr::Square(expr::Add(expr::Col("x"), expr::Col("y")));
  expr::EvalOptions opts;
  opts.mc_samples = static_cast<size_t>(state.range(0));
  expr::Evaluator eval(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(*e, row));
  }
}
BENCHMARK(BM_MonteCarloExpression)->Arg(400)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
