// Microbenchmarks of the accuracy-engine primitives.
//
// Default mode is the vectorized-kernel gate: each flat-array kernel
// (histogram CDF evaluation, convolution cloud-in-cell deposit, bootstrap
// resampling, Lemma 1 proportion intervals) runs back-to-back against an
// inlined replica of the scalar seed loop it replaced, in paired
// best-of-reps runs so machine drift hits both arms. The bar:
//  * the CDF-evaluation and convolution-deposit kernels must reach
//    `--min-speedup` (default 1.3x) over their seed loops, and
//  * the scalar entry points must stay within `--max-scalar-ratio`
//    (default 1.02 = 2%) of the seed replicas — the kernels are an added
//    fast path, never a scalar regression.
// Every arm's outputs are compared byte-for-byte before timing counts —
// a kernel that drifts numerically fails before it can "win". Results go
// to BENCH_microops.json (override with `--out=<path>`); a missed bar
// exits non-zero, so CI gates on it.
//
// Pass `--gbench` to instead run the original google-benchmark suite of
// per-tuple primitive costs (quantiles, intervals, hypothesis tests,
// learners) behind the throughput figures 5(c)/5(f).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/figure_common.h"
#include "src/accuracy/accuracy_info.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/bootstrap/resampler.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/dist/kernels.h"
#include "src/dist/learner.h"
#include "src/expr/evaluator.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/stats/quantiles.h"
#include "src/stats/random_variates.h"

using namespace ausdb;

namespace {

// ------------------------------------------------------------------
// Kernel-gate section.
// ------------------------------------------------------------------

constexpr int kReps = 7;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

dist::HistogramDist MakeBenchHistogram(size_t bins, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> edges(bins + 1);
  double e = -3.0;
  for (size_t i = 0; i <= bins; ++i) {
    edges[i] = e;
    e += 0.01 + rng.NextDouble();  // uneven widths
  }
  std::vector<double> probs(bins);
  double total = 0.0;
  for (double& p : probs) {
    p = rng.NextDouble();
    total += p;
  }
  for (double& p : probs) p /= total;
  auto h = dist::HistogramDist::Make(std::move(edges), std::move(probs));
  AUSDB_CHECK(h.ok()) << h.status().ToString();
  return std::move(*h);
}

// Inlined replica of the seed HistogramDist::Cdf body (the loop the
// CdfMany kernel replaced: std::upper_bound per element).
double SeedCdf(const std::vector<double>& edges,
               const std::vector<double>& probs,
               const std::vector<double>& cum, double x) {
  if (x < edges.front()) return 0.0;
  if (x >= edges.back()) return 1.0;
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  const size_t bin = static_cast<size_t>(it - edges.begin()) - 1;
  const double below = bin == 0 ? 0.0 : cum[bin - 1];
  const double frac = (x - edges[bin]) / (edges[bin + 1] - edges[bin]);
  return below + probs[bin] * frac;
}

// The seed Cdf sat behind the Distribution vtable, so the regression
// arm's replica does too: both arms call through the same virtual slot.
// Everything but Cdf is unused by the bench.
class SeedCdfReplica final : public dist::Distribution {
 public:
  SeedCdfReplica(const std::vector<double>* edges,
                 const std::vector<double>* probs,
                 const std::vector<double>* cum)
      : edges_(edges), probs_(probs), cum_(cum) {}
  dist::DistributionKind kind() const override {
    return dist::DistributionKind::kHistogram;
  }
  double Mean() const override { return 0.0; }
  double Variance() const override { return 0.0; }
  double Cdf(double x) const override {
    return SeedCdf(*edges_, *probs_, *cum_, x);
  }
  double Sample(Rng&) const override { return 0.0; }
  std::string ToString() const override { return "SeedCdfReplica"; }
  std::shared_ptr<dist::Distribution> Clone() const override {
    return nullptr;
  }

 private:
  const std::vector<double>* edges_;
  const std::vector<double>* probs_;
  const std::vector<double>* cum_;
};

// Identity laundering: `noipa` blocks devirtualization of calls made
// through the returned pointer, so both regression arms pay one real
// indirect call per element — exactly what the engine's callers pay.
__attribute__((noipa)) const dist::Distribution* Opaque(
    const dist::Distribution* d) {
  return d;
}

struct PairedTimes {
  double scalar_sec = 1e30;  // best (min) per arm across reps
  double kernel_sec = 1e30;
  double speedup = 0.0;  // best (max) per-rep scalar/kernel ratio
};

// Runs `scalar` and `kernel` back to back `kReps` times; per-rep ratios
// absorb drift, best-of-reps absorbs one-off stalls.
template <typename ScalarFn, typename KernelFn>
PairedTimes PairedBestOfReps(ScalarFn&& scalar, KernelFn&& kernel) {
  PairedTimes t;
  for (int rep = 0; rep < kReps; ++rep) {
    const double s0 = NowSeconds();
    scalar();
    const double s1 = NowSeconds();
    kernel();
    const double s2 = NowSeconds();
    const double scalar_sec = s1 - s0;
    const double kernel_sec = s2 - s1;
    t.scalar_sec = std::min(t.scalar_sec, scalar_sec);
    t.kernel_sec = std::min(t.kernel_sec, kernel_sec);
    t.speedup = std::max(t.speedup, scalar_sec / kernel_sec);
  }
  return t;
}

bool BytesEqual(const std::vector<double>& a,
                const std::vector<double>& b, const char* what) {
  if (a.size() == b.size() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0) {
    return true;
  }
  std::fprintf(stderr, "FAIL: %s kernel output not byte-identical\n",
               what);
  return false;
}

// CDF evaluation: seed upper_bound loop vs the branchless CdfMany
// kernel, plus the seed-vs-current check on the scalar virtual entry
// point. 256 bins x 200k evaluation points.
bool GateCdfEvaluation(bench::JsonResultsWriter& results,
                       double min_speedup, double max_scalar_ratio,
                       bool& gates_ok) {
  const auto h = MakeBenchHistogram(256, 0xCDF);
  const std::vector<double>& edges = h.edges();
  const std::vector<double>& probs = h.probs();
  std::vector<double> cum(probs.size());
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    cum[i] = acc;
  }
  cum.back() = 1.0;

  constexpr size_t kPoints = 200000;
  Rng rng(11);
  std::vector<double> xs(kPoints);
  const double lo = edges.front() - 1.0;
  const double hi = edges.back() + 1.0;
  for (double& x : xs) x = rng.NextDouble(lo, hi);

  std::vector<double> seed_out(kPoints);
  std::vector<double> scalar_out(kPoints);
  std::vector<double> kernel_out(kPoints);
  const dist::Distribution& d = h;  // the scalar path's virtual call

  const PairedTimes kernel_t = PairedBestOfReps(
      [&] {
        for (size_t i = 0; i < kPoints; ++i) {
          seed_out[i] = SeedCdf(edges, probs, cum, xs[i]);
        }
        benchmark::DoNotOptimize(seed_out.data());
      },
      [&] {
        h.CdfMany(xs, kernel_out);
        benchmark::DoNotOptimize(kernel_out.data());
      });
  if (!BytesEqual(seed_out, kernel_out, "CDF-evaluation")) return false;

  // Scalar-regression arm: the virtual per-element entry point must not
  // have drifted from the seed loop. Comparing an inlined replica
  // against the virtual entry point would bill the dispatch itself as a
  // regression, so both arms go through Opaque() and the same vtable
  // slot.
  SeedCdfReplica replica(&edges, &probs, &cum);
  const dist::Distribution* seed_dist = Opaque(&replica);
  const dist::Distribution* cur = Opaque(&d);
  double scalar_sec = 1e30;
  double seed_sec = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const double s0 = NowSeconds();
    for (size_t i = 0; i < kPoints; ++i) {
      seed_out[i] = seed_dist->Cdf(xs[i]);
    }
    benchmark::DoNotOptimize(seed_out.data());
    const double s1 = NowSeconds();
    for (size_t i = 0; i < kPoints; ++i) {
      scalar_out[i] = cur->Cdf(xs[i]);
    }
    benchmark::DoNotOptimize(scalar_out.data());
    const double s2 = NowSeconds();
    seed_sec = std::min(seed_sec, s1 - s0);
    scalar_sec = std::min(scalar_sec, s2 - s1);
  }
  if (!BytesEqual(seed_out, scalar_out, "scalar CDF")) return false;
  const double scalar_ratio = scalar_sec / seed_sec;

  const double ns_per = 1e9 / static_cast<double>(kPoints);
  bench::PrintRow({"cdf-evaluation", bench::Fmt(kernel_t.scalar_sec * ns_per, 2),
                   bench::Fmt(kernel_t.kernel_sec * ns_per, 2),
                   bench::Fmt(kernel_t.speedup, 3),
                   bench::Fmt(scalar_ratio, 3)},
                  18);
  results.AddRow({{"kernel", 0.0},
                  {"seed_ns_per_elem", kernel_t.scalar_sec * ns_per},
                  {"kernel_ns_per_elem", kernel_t.kernel_sec * ns_per},
                  {"speedup", kernel_t.speedup},
                  {"scalar_vs_seed_ratio", scalar_ratio}});
  if (kernel_t.speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: CDF-evaluation kernel speedup %.3f < %.3f\n",
                 kernel_t.speedup, min_speedup);
    gates_ok = false;
  }
  if (scalar_ratio > max_scalar_ratio) {
    std::fprintf(stderr,
                 "FAIL: scalar CDF path %.3fx the seed loop "
                 "(bar %.3f)\n",
                 scalar_ratio, max_scalar_ratio);
    gates_ok = false;
  }
  return true;
}

struct SeedPointMass {
  double value;
  double mass;
};

// Convolution deposit: seed AoS cloud-in-cell loop vs the two-pass tiled
// kernel. 512 x 512 point clouds onto a 128-bin grid.
bool GateConvolutionDeposit(bench::JsonResultsWriter& results,
                            double min_speedup, bool& gates_ok) {
  constexpr size_t kA = 512;
  constexpr size_t kB = 512;
  constexpr size_t kBins = 128;
  Rng rng(0xC1C);
  std::vector<SeedPointMass> pa(kA), pb(kB);
  std::vector<double> a_values(kA), a_masses(kA);
  std::vector<double> b_values(kB), b_masses(kB);
  for (size_t i = 0; i < kA; ++i) {
    pa[i] = {rng.NextDouble(0.0, 10.0), 1.0 / kA};
    a_values[i] = pa[i].value;
    a_masses[i] = pa[i].mass;
  }
  for (size_t i = 0; i < kB; ++i) {
    pb[i] = {rng.NextDouble(0.0, 10.0), 1.0 / kB};
    b_values[i] = pb[i].value;
    b_masses[i] = pb[i].mass;
  }
  const double lo = 0.0;
  const double step = 20.0 / static_cast<double>(kBins - 1);
  const double inv_step = 1.0 / step;

  std::vector<double> seed_grid(kBins);
  std::vector<double> kernel_grid(kBins);
  constexpr int kInnerReps = 8;  // amortize timer granularity

  const PairedTimes t = PairedBestOfReps(
      [&] {
        // The seed deposit loop of ConvolveHistograms, verbatim.
        for (int r = 0; r < kInnerReps; ++r) {
          std::fill(seed_grid.begin(), seed_grid.end(), 0.0);
          for (const SeedPointMass& a : pa) {
            for (const SeedPointMass& b : pb) {
              const double v = a.value + b.value;
              const double m = a.mass * b.mass;
              const double p = std::clamp(
                  (v - lo) * inv_step, 0.0,
                  static_cast<double>(kBins - 1));
              const size_t i0 =
                  std::min(static_cast<size_t>(p), kBins - 2);
              const double frac = p - static_cast<double>(i0);
              seed_grid[i0] += m * (1.0 - frac);
              seed_grid[i0 + 1] += m * frac;
            }
          }
          benchmark::DoNotOptimize(seed_grid.data());
        }
      },
      [&] {
        for (int r = 0; r < kInnerReps; ++r) {
          std::fill(kernel_grid.begin(), kernel_grid.end(), 0.0);
          dist::CicDepositTiled(a_values, a_masses, b_values, b_masses,
                                lo, inv_step, kernel_grid);
          benchmark::DoNotOptimize(kernel_grid.data());
        }
      });
  if (!BytesEqual(seed_grid, kernel_grid, "convolution-deposit")) {
    return false;
  }

  const double pairs =
      static_cast<double>(kA) * static_cast<double>(kB) * kInnerReps;
  const double ns_per = 1e9 / pairs;
  bench::PrintRow({"convolution-deposit",
                   bench::Fmt(t.scalar_sec * ns_per, 3),
                   bench::Fmt(t.kernel_sec * ns_per, 3),
                   bench::Fmt(t.speedup, 3), "-"},
                  18);
  results.AddRow({{"kernel", 1.0},
                  {"seed_ns_per_elem", t.scalar_sec * ns_per},
                  {"kernel_ns_per_elem", t.kernel_sec * ns_per},
                  {"speedup", t.speedup}});
  if (t.speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: convolution-deposit kernel speedup %.3f < "
                 "%.3f\n",
                 t.speedup, min_speedup);
    gates_ok = false;
  }
  return true;
}

// Bootstrap resampling: seed draw-and-gather loop vs the tiled
// ResampleInto. Informational (reported, not gated): the draw sequence
// itself is the floor on this loop.
bool ReportResample(bench::JsonResultsWriter& results) {
  constexpr size_t kN = 1024;
  constexpr size_t kOut = 200000;
  Rng fill(5);
  std::vector<double> sample(kN);
  for (double& v : sample) v = fill.NextDouble();
  std::vector<double> seed_out(kOut);
  std::vector<double> kernel_out(kOut);

  const PairedTimes t = PairedBestOfReps(
      [&] {
        Rng rng(77);  // same seed both arms: identical draw sequence
        for (double& slot : seed_out) slot = sample[rng.NextBelow(kN)];
        benchmark::DoNotOptimize(seed_out.data());
      },
      [&] {
        Rng rng(77);
        bootstrap::ResampleInto(sample, kernel_out, rng);
        benchmark::DoNotOptimize(kernel_out.data());
      });
  if (!BytesEqual(seed_out, kernel_out, "bootstrap-resample")) {
    return false;
  }
  const double ns_per = 1e9 / static_cast<double>(kOut);
  bench::PrintRow({"bootstrap-resample",
                   bench::Fmt(t.scalar_sec * ns_per, 2),
                   bench::Fmt(t.kernel_sec * ns_per, 2),
                   bench::Fmt(t.speedup, 3), "-"},
                  18);
  results.AddRow({{"kernel", 2.0},
                  {"seed_ns_per_elem", t.scalar_sec * ns_per},
                  {"kernel_ns_per_elem", t.kernel_sec * ns_per},
                  {"speedup", t.speedup}});
  return true;
}

// Lemma 1 per-bin intervals: seed per-bin ProportionInterval loop vs the
// hoisted ProportionIntervalsMany. Informational.
bool ReportProportionIntervals(bench::JsonResultsWriter& results) {
  const auto h = MakeBenchHistogram(256, 0xB195);
  constexpr size_t kRounds = 2000;
  constexpr size_t kSampleSize = 500;
  constexpr double kConfidence = 0.9;
  std::vector<accuracy::ConfidenceInterval> seed_out(h.bin_count());
  std::vector<accuracy::ConfidenceInterval> kernel_out(h.bin_count());

  const PairedTimes t = PairedBestOfReps(
      [&] {
        for (size_t r = 0; r < kRounds; ++r) {
          for (size_t i = 0; i < h.bin_count(); ++i) {
            auto ci = accuracy::ProportionInterval(
                h.BinProb(i), kSampleSize, kConfidence);
            AUSDB_CHECK(ci.ok());
            seed_out[i] = *ci;
          }
          benchmark::DoNotOptimize(seed_out.data());
        }
      },
      [&] {
        for (size_t r = 0; r < kRounds; ++r) {
          auto st = accuracy::ProportionIntervalsMany(
              h.probs(), kSampleSize, kConfidence, kernel_out);
          AUSDB_CHECK(st.ok());
          benchmark::DoNotOptimize(kernel_out.data());
        }
      });
  for (size_t i = 0; i < h.bin_count(); ++i) {
    if (std::memcmp(&seed_out[i].lo, &kernel_out[i].lo,
                    sizeof(double)) != 0 ||
        std::memcmp(&seed_out[i].hi, &kernel_out[i].hi,
                    sizeof(double)) != 0) {
      std::fprintf(
          stderr,
          "FAIL: proportion-intervals kernel not byte-identical\n");
      return false;
    }
  }
  const double ns_per =
      1e9 / static_cast<double>(kRounds * h.bin_count());
  bench::PrintRow({"proportion-intervals",
                   bench::Fmt(t.scalar_sec * ns_per, 2),
                   bench::Fmt(t.kernel_sec * ns_per, 2),
                   bench::Fmt(t.speedup, 3), "-"},
                  18);
  results.AddRow({{"kernel", 3.0},
                  {"seed_ns_per_elem", t.scalar_sec * ns_per},
                  {"kernel_ns_per_elem", t.kernel_sec * ns_per},
                  {"speedup", t.speedup}});
  return true;
}

// ------------------------------------------------------------------
// google-benchmark suite (run with --gbench).
// ------------------------------------------------------------------

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.0123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::NormalQuantile(p));
    p = p < 0.99 ? p + 1e-4 : 0.0123;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_StudentTQuantile(benchmark::State& state) {
  double p = 0.0123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::StudentTQuantile(p, 19.0));
    p = p < 0.99 ? p + 1e-4 : 0.0123;
  }
}
BENCHMARK(BM_StudentTQuantile);

void BM_ChiSquareQuantile(benchmark::State& state) {
  double p = 0.0123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ChiSquareQuantile(p, 19.0));
    p = p < 0.99 ? p + 1e-4 : 0.0123;
  }
}
BENCHMARK(BM_ChiSquareQuantile);

void BM_MeanInterval(benchmark::State& state) {
  // Cached-percentile fast path: same (n, confidence) every call, as in
  // the streaming pipeline.
  for (auto _ : state) {
    benchmark::DoNotOptimize(accuracy::MeanInterval(10.0, 2.0, 20, 0.9));
  }
}
BENCHMARK(BM_MeanInterval);

void BM_ProportionInterval(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(accuracy::ProportionInterval(0.3, 20, 0.9));
  }
}
BENCHMARK(BM_ProportionInterval);

void BM_AnalyticalAccuracyGaussian(benchmark::State& state) {
  dist::GaussianDist g(10.0, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accuracy::AnalyticalAccuracy(g, 20, 0.9));
  }
}
BENCHMARK(BM_AnalyticalAccuracyGaussian);

void BM_BootstrapFromDistribution(benchmark::State& state) {
  dist::GaussianDist g(10.0, 4.0);
  Rng rng(1);
  const size_t r = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bootstrap::BootstrapAccuracyFromDistribution(g, 20, r, 0.9, rng));
  }
}
BENCHMARK(BM_BootstrapFromDistribution)->Arg(10)->Arg(20)->Arg(50);

void BM_CoupledMTest(benchmark::State& state) {
  hypothesis::SampleStatistics s{10.2, 2.0, 20};
  for (auto _ : state) {
    auto outcome = hypothesis::CoupledTests(
        [&s](hypothesis::TestOp op, double alpha) {
          return hypothesis::MeanTest(s, op, 10.0, alpha);
        },
        hypothesis::TestOp::kGreater, 0.05, 0.05);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CoupledMTest);

void BM_LearnGaussian20(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> sample(20);
  for (auto _ : state) {
    for (double& v : sample) v = stats::SampleNormal(rng, 10.0, 2.0);
    benchmark::DoNotOptimize(dist::LearnGaussian(sample));
  }
}
BENCHMARK(BM_LearnGaussian20);

void BM_LearnHistogram(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> sample(static_cast<size_t>(state.range(0)));
  for (double& v : sample) v = stats::SampleNormal(rng, 10.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::LearnHistogram(sample, {}));
  }
}
BENCHMARK(BM_LearnHistogram)->Arg(20)->Arg(100)->Arg(1000);

void BM_PredicateColumnVsConstant(benchmark::State& state) {
  const std::vector<std::string> names = {"x"};
  const std::vector<expr::Value> values = {expr::Value(dist::RandomVar(
      std::make_shared<dist::GaussianDist>(10.0, 4.0), 20))};
  const expr::Row row{&names, &values};
  const auto pred = expr::Gt(expr::Col("x"), expr::Lit(9.0));
  expr::Evaluator eval;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvaluatePredicate(*pred, row));
  }
}
BENCHMARK(BM_PredicateColumnVsConstant);

void BM_MonteCarloExpression(benchmark::State& state) {
  const std::vector<std::string> names = {"x", "y"};
  const std::vector<expr::Value> values = {
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(10.0, 4.0), 20)),
      expr::Value(dist::RandomVar(
          std::make_shared<dist::GaussianDist>(5.0, 1.0), 20))};
  const expr::Row row{&names, &values};
  const auto e = expr::Square(expr::Add(expr::Col("x"), expr::Col("y")));
  expr::EvalOptions opts;
  opts.mc_samples = static_cast<size_t>(state.range(0));
  expr::Evaluator eval(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(*e, row));
  }
}
BENCHMARK(BM_MonteCarloExpression)->Arg(400)->Arg(2000);

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  double min_speedup = 1.3;
  double max_scalar_ratio = 1.02;
  std::string out_path = "BENCH_microops.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--max-scalar-ratio=", 19) == 0) {
      max_scalar_ratio = std::atof(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  bench::Banner("Micro-op kernels",
                "flat-array kernels vs scalar seed loops");
  bench::PrintRow({"kernel", "seed ns/elem", "kernel ns/elem", "speedup",
                   "scalar/seed"},
                  18);

  bench::JsonResultsWriter results("microops");
  bool gates_ok = true;
  if (!GateCdfEvaluation(results, min_speedup, max_scalar_ratio,
                         gates_ok)) {
    return 1;
  }
  if (!GateConvolutionDeposit(results, min_speedup, gates_ok)) return 1;
  if (!ReportResample(results)) return 1;
  if (!ReportProportionIntervals(results)) return 1;

  if (!results.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());
  if (!gates_ok) return 1;
  std::printf("PASS\n");
  return 0;
}
