// Fault-recovery overhead: throughput of the Section V-C synthetic
// stream (a) through a bare StreamScan, (b) through a SupervisedScan on
// the fault-free path, and (c) through a SupervisedScan with injected
// transient failures at several rates.
//
// The acceptance bar is (b) within 5% of (a): supervision must be free
// when nothing fails. (c) quantifies what each retried failure costs
// (backoff is recorded, not slept, so the numbers isolate the CPU-side
// recovery work from the configured delays).

#include <algorithm>
#include <functional>
#include <memory>

#include "bench/figure_common.h"
#include "src/common/fault_injector.h"
#include "src/common/logging.h"
#include "src/engine/executor.h"
#include "src/engine/window_aggregate.h"
#include "src/stream/sources.h"
#include "src/stream/supervised_source.h"
#include "src/stream/throughput.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 200000;
constexpr size_t kPointsPerItem = 20;
constexpr size_t kWindow = 1000;

engine::OperatorPtr MakeBareSource() {
  return stream::MakeLearnedGaussianSource(
      "x", kTuples, kPointsPerItem, 10.0, 2.0, /*seed=*/53);
}

/// The synthetic source with a FaultInjector in front of every pull.
engine::OperatorPtr MakeFaultySource(std::shared_ptr<FaultInjector> fi) {
  auto inner = MakeBareSource();
  auto holder =
      std::make_shared<engine::OperatorPtr>(std::move(inner));
  engine::Schema schema = (*holder)->schema();
  engine::TupleGenerator gen =
      [holder, fi]() -> Result<std::optional<engine::Tuple>> {
    AUSDB_RETURN_NOT_OK(fi->Tick());
    return (*holder)->Next();
  };
  return stream::MakeCallbackSource(std::move(schema), std::move(gen));
}

engine::OperatorPtr Supervise(engine::OperatorPtr source) {
  stream::SupervisedScanOptions opts;
  opts.retry.max_attempts = 8;
  opts.retry.jitter_fraction = 0.0;
  return std::make_unique<stream::SupervisedScan>(std::move(source),
                                                  std::move(opts));
}

engine::OperatorPtr WindowedPlan(engine::OperatorPtr source) {
  auto agg = engine::WindowAggregate::Make(std::move(source), "x", "avg_x",
                                           {.window_size = kWindow});
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  return std::move(*agg);
}

struct Measured {
  double rate = 0.0;
  size_t retries = 0;
};

/// Best of three fresh runs: single-pass rates swing ±10% with
/// scheduler noise, which would flakily break the 5% overhead bar.
Measured BestOfRuns(
    const std::function<engine::OperatorPtr(stream::SupervisedScan**)>&
        make_plan) {
  Measured best;
  for (int rep = 0; rep < 3; ++rep) {
    stream::SupervisedScan* sup = nullptr;
    auto plan = make_plan(&sup);
    const double rate = bench::MeasureTuplesPerSecond(*plan);
    const size_t retries = sup ? sup->counters().retries : 0;
    if (rate > best.rate) best = {rate, retries};
  }
  return best;
}

}  // namespace

int main() {
  bench::Banner("Fault recovery",
                "supervised-source overhead and recovery cost");
  bench::PrintRow({"configuration", "tuples/s", "vs bare", "retries"}, 26);

  // The overhead bar needs a tighter estimate than independent runs
  // give: measure bare and supervised back-to-back in each rep (machine
  // drift hits both sides of the pair) and take the smallest ratio.
  Measured bare, fault_free;
  double best_ratio = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    auto bare_plan = WindowedPlan(MakeBareSource());
    const double bare_rate = bench::MeasureTuplesPerSecond(*bare_plan);
    auto supervised = Supervise(MakeBareSource());
    auto plan = WindowedPlan(std::move(supervised));
    const double sup_rate = bench::MeasureTuplesPerSecond(*plan);
    if (bare_rate > bare.rate) bare.rate = bare_rate;
    if (sup_rate > fault_free.rate) fault_free.rate = sup_rate;
    best_ratio = std::min(best_ratio, bare_rate / sup_rate);
  }
  bench::PrintRow(
      {"bare StreamScan", bench::FmtInt(bare.rate), "1.000", "0"}, 26);
  bench::PrintRow({"supervised, fault-free", bench::FmtInt(fault_free.rate),
                   bench::Fmt(best_ratio, 3), "0"}, 26);
  std::printf("fault-free supervision overhead: %.2f%% (bar: 5%%)\n",
              (best_ratio - 1.0) * 100.0);

  for (double p : {0.001, 0.01, 0.05}) {
    const Measured m = BestOfRuns([p](stream::SupervisedScan** sup) {
      FaultSpec spec;
      spec.mode = FaultMode::kProbability;
      spec.probability = p;
      auto fi = std::make_shared<FaultInjector>(spec, /*seed=*/7);
      auto supervised = Supervise(MakeFaultySource(fi));
      *sup = static_cast<stream::SupervisedScan*>(supervised.get());
      return WindowedPlan(std::move(supervised));
    });
    bench::PrintRow({"supervised, p=" + bench::Fmt(p, 3),
                     bench::FmtInt(m.rate), bench::Fmt(bare.rate / m.rate, 3),
                     std::to_string(m.retries)}, 26);
  }
  return 0;
}
