// Ablation: closed-form histogram convolution vs Monte Carlo for the sum
// of two histogram-distributed attributes — accuracy (CDF error against
// a high-resolution reference) and speed.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/figure_common.h"
#include "src/common/rng.h"
#include "src/dist/convolution.h"
#include "src/dist/empirical.h"
#include "src/dist/learner.h"
#include "src/stats/random_variates.h"
#include "src/stream/throughput.h"

using namespace ausdb;

namespace {

double MaxCdfError(const dist::Distribution& d,
                   const std::vector<double>& reference_sorted) {
  double worst = 0.0;
  const size_t n = reference_sorted.size();
  for (size_t i = 0; i < 200; ++i) {
    const double q =
        reference_sorted[(i * (n - 1)) / 199];
    const double ref_cdf =
        static_cast<double>(std::upper_bound(reference_sorted.begin(),
                                             reference_sorted.end(), q) -
                            reference_sorted.begin()) /
        static_cast<double>(n);
    worst = std::max(worst, std::abs(d.Cdf(q) - ref_cdf));
  }
  return worst;
}

}  // namespace

int main() {
  bench::Banner("Ablation",
                "histogram convolution vs Monte Carlo for X + Y");

  Rng rng(63);
  // Two learned histograms: skewed gamma and normal.
  auto a_sample = stats::SampleMany(
      3000, [&] { return stats::SampleGamma(rng, 2.0, 2.0); });
  auto b_sample = stats::SampleMany(
      3000, [&] { return stats::SampleNormal(rng, 10.0, 2.0); });
  dist::HistogramLearnOptions hopts;
  hopts.bin_count = 20;
  auto a = dist::LearnHistogram(a_sample, hopts);
  auto b = dist::LearnHistogram(b_sample, hopts);
  const auto& ha =
      static_cast<const dist::HistogramDist&>(*a->distribution);
  const auto& hb =
      static_cast<const dist::HistogramDist&>(*b->distribution);

  // High-resolution reference: 2M exact samples of the sum.
  std::vector<double> reference;
  reference.reserve(2000000);
  for (int i = 0; i < 2000000; ++i) {
    reference.push_back(ha.Sample(rng) + hb.Sample(rng));
  }
  std::sort(reference.begin(), reference.end());

  bench::PrintRow({"method", "ops_per_sec", "max_cdf_err"}, 22);

  // Convolution at several subdivision levels.
  for (size_t s : {1, 4, 16}) {
    dist::ConvolveOptions copts;
    copts.subdivisions = s;
    stream::ThroughputMeter meter;
    meter.Start();
    Result<dist::HistogramDist> sum = dist::ConvolveHistograms(ha, hb,
                                                               copts);
    for (int i = 0; i < 199; ++i) {
      sum = dist::ConvolveHistograms(ha, hb, copts);
      meter.Count();
    }
    meter.Count();
    meter.Stop();
    bench::PrintRow({"convolve_s" + std::to_string(s),
                     bench::FmtInt(meter.TuplesPerSecond()),
                     bench::Fmt(MaxCdfError(*sum, reference), 4)},
                    22);
  }

  // Monte Carlo empirical at several sample counts.
  for (size_t m : {400, 2000, 10000}) {
    stream::ThroughputMeter meter;
    meter.Start();
    Result<dist::EmpiricalDist> emp =
        Status::Internal("unset");
    std::vector<double> draws(m);
    for (int rep = 0; rep < 50; ++rep) {
      for (double& v : draws) v = ha.Sample(rng) + hb.Sample(rng);
      emp = dist::EmpiricalDist::Make(draws);
      meter.Count();
    }
    meter.Stop();
    bench::PrintRow({"mc_m" + std::to_string(m),
                     bench::FmtInt(meter.TuplesPerSecond()),
                     bench::Fmt(MaxCdfError(*emp, reference), 4)},
                    22);
  }

  std::printf(
      "\nReading: convolution reaches Monte-Carlo-at-m=10000 accuracy at "
      "a small\nfraction of the cost; its error is systematic "
      "(discretization), not\nstatistical, so it does not shrink result "
      "accuracy intervals unfairly.\n");
  return 0;
}
