// Figure 4(c): miss rates of the 90% confidence intervals vs sample size
// n, per statistic (bin heights, mean, variance), on the simulated
// road-delay data. A miss = the ground-truth value (from the full
// population) falls outside the interval.

#include "bench/figure_common.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/common/rng.h"
#include "src/dist/histogram.h"
#include "src/dist/learner.h"
#include "src/stats/descriptive.h"
#include "src/workload/cartel.h"

using namespace ausdb;

int main() {
  bench::Banner("Figure 4(c)", "miss rates vs n (90% intervals)");

  workload::CartelOptions opts;
  opts.num_segments = 100;
  opts.observations_per_segment = 800;
  workload::CartelSimulator sim(opts);
  Rng rng(43);

  constexpr int kTrialsPerSegment = 30;
  bench::PrintRow({"n", "bin_heights", "mean", "variance"});

  for (size_t n : {10, 20, 30, 40, 50, 60, 70, 80}) {
    size_t bin_checks = 0, bin_misses = 0;
    size_t mean_checks = 0, mean_misses = 0;
    size_t var_checks = 0, var_misses = 0;

    for (size_t seg = 0; seg < sim.num_segments(); ++seg) {
      const auto& pop = sim.Population(seg);
      dist::HistogramLearnOptions hopts;
      hopts.bin_count = 10;
      auto edges = dist::ComputeBinEdges(pop, hopts);
      // Ground-truth bin probabilities from the full population.
      const auto pop_counts = dist::CountBins(pop, *edges);
      std::vector<double> true_bin_probs;
      for (size_t c : pop_counts) {
        true_bin_probs.push_back(static_cast<double>(c) /
                                 static_cast<double>(pop.size()));
      }
      dist::HistogramLearnOptions sample_opts;
      sample_opts.policy = dist::BinningPolicy::kExplicitEdges;
      sample_opts.edges = *edges;

      for (int trial = 0; trial < kTrialsPerSegment; ++trial) {
        auto sample = sim.DrawSample(seg, n, rng);
        auto learned = dist::LearnHistogram(*sample, sample_opts);
        const auto& hist = static_cast<const dist::HistogramDist&>(
            *learned->distribution);
        for (size_t b = 0; b < hist.bin_count(); ++b) {
          auto ci = accuracy::ProportionInterval(hist.BinProb(b), n, 0.9);
          ++bin_checks;
          if (!ci->Contains(true_bin_probs[b])) ++bin_misses;
        }
        auto mean_ci = accuracy::MeanIntervalFromSample(*sample, 0.9);
        ++mean_checks;
        if (!mean_ci->Contains(sim.TrueMean(seg))) ++mean_misses;
        auto var_ci = accuracy::VarianceIntervalFromSample(*sample, 0.9);
        ++var_checks;
        if (!var_ci->Contains(sim.TrueVariance(seg))) ++var_misses;
      }
    }
    bench::PrintRow(
        {std::to_string(n),
         bench::Fmt(static_cast<double>(bin_misses) / bin_checks, 4),
         bench::Fmt(static_cast<double>(mean_misses) / mean_checks, 4),
         bench::Fmt(static_cast<double>(var_misses) / var_checks, 4)});
  }
  std::printf(
      "\nExpected shape (paper): bin heights lowest; mean elevated at "
      "small n; variance highest (normality assumption hurts it on "
      "skewed delays). Nominal miss rate is 10%%.\n");
  return 0;
}
