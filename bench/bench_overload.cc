// Overload-governor acceptance bench, CI-gated on two promises:
//
//  1. An idle governor is (nearly) free: a GovernorGate ticking epochs
//     over a calm signal script costs at most 5% throughput against the
//     same pipeline with no gate at all.
//  2. Above the accuracy floor the governor sheds precision, never
//     data: a scripted saturation burst must escalate the ladder and
//     deliver every admitted tuple — zero shed — with admission-control
//     refusals absorbed by the supervising retry layer.
//
// Run with no arguments for the default 1.05x bar, or pass
// `--max-ratio=<r>` to move it. Results are also written to
// BENCH_overload.json (override with --out=<path>). Exits non-zero when
// either gate fails, so CI can gate on it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/dist/gaussian.h"
#include "src/engine/executor.h"
#include "src/engine/reorder_buffer.h"
#include "src/engine/scan.h"
#include "src/engine/window_aggregate.h"
#include "src/govern/governor_gate.h"
#include "src/govern/overload_injector.h"
#include "src/stream/sources.h"
#include "src/stream/supervised_source.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 150000;
constexpr size_t kPointsPerItem = 20;
constexpr size_t kWindow = 1000;
constexpr int kReps = 5;

constexpr size_t kGovernedTuples = 20000;

/// The Section V-C synthetic stream through a sliding-window AVG — the
/// same shape the figure benches drain — optionally with a GovernorGate
/// over the source ticking epochs against a calm script.
engine::OperatorPtr MakeOverheadPipeline(bool gated) {
  engine::OperatorPtr source = stream::MakeLearnedGaussianSource(
      "x", kTuples, kPointsPerItem, 10.0, 2.0, /*seed=*/53);
  if (gated) {
    auto gate = govern::GovernorGate::Make(
        std::move(source),
        std::make_unique<govern::OverloadInjector>(
            govern::OverloadInjector::CalmScript(4)),
        govern::GovernorOptions{});
    AUSDB_CHECK(gate.ok()) << gate.status().ToString();
    source = std::move(*gate);
  }
  auto agg = engine::WindowAggregate::Make(std::move(source), "x", "avg_x",
                                           {.window_size = kWindow});
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  return std::move(*agg);
}

engine::Schema TsSchema() {
  engine::Schema s;
  AUSDB_CHECK(s.AddField({"ts", engine::FieldType::kDouble}).ok());
  AUSDB_CHECK(s.AddField({"x", engine::FieldType::kUncertain}).ok());
  return s;
}

std::vector<engine::Tuple> TsStream(size_t count) {
  std::vector<engine::Tuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(engine::Tuple(
        {expr::Value(static_cast<double>(i)),
         expr::Value(dist::RandomVar(
             std::make_shared<dist::GaussianDist>(10.0 * i, 1.0), 50))}));
  }
  // Bounded disorder so the governed reorder horizon has work to do.
  for (size_t start = 0; start + 3 <= tuples.size(); start += 3) {
    std::rotate(tuples.begin() + start, tuples.begin() + start + 1,
                tuples.begin() + start + 3);
  }
  return tuples;
}

}  // namespace

int main(int argc, char** argv) {
  double max_ratio = 1.05;
  std::string out_path = "BENCH_overload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  bench::Banner("Overload governor",
                "idle overhead and precision-not-data shedding");
  bench::JsonResultsWriter results("overload");

  // -- Gate 1: governor-idle overhead ---------------------------------
  // Back-to-back paired runs: machine drift hits both sides of each
  // pair, and the smallest per-pair ratio is the honest overhead bound.
  double bare_best = 0.0, gated_best = 0.0, best_ratio = 1e9;
  for (int rep = 0; rep < kReps; ++rep) {
    auto bare = MakeOverheadPipeline(/*gated=*/false);
    const double off = bench::MeasureTuplesPerSecond(*bare);
    auto gated = MakeOverheadPipeline(/*gated=*/true);
    const double on = bench::MeasureTuplesPerSecond(*gated);
    bare_best = std::max(bare_best, off);
    gated_best = std::max(gated_best, on);
    best_ratio = std::min(best_ratio, off / on);
  }

  bench::PrintRow({"configuration", "tuples/s", "ratio"}, 20);
  bench::PrintRow({"no gate", bench::FmtInt(bare_best), "1.000"}, 20);
  bench::PrintRow(
      {"idle gate", bench::FmtInt(gated_best), bench::Fmt(best_ratio, 3)},
      20);
  std::printf("governor-idle overhead: %.2f%% (bar: %.2f%%)\n",
              (best_ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);
  results.AddRow({{"bare_tps", bare_best},
                  {"gated_tps", gated_best},
                  {"idle_ratio", best_ratio}});

  // -- Gate 2: saturation sheds precision, never data -----------------
  // A saturation burst inside a calm stream. The gate escalates to the
  // deepest floor-permitted rung, refuses admission while pinned past
  // it (absorbed by the supervising retry layer), and every admitted
  // tuple still comes out of the governed reorder stage.
  govern::GovernorOptions gopts;
  gopts.epoch_interval = 64;
  gopts.ladder.dwell_epochs = 1;
  auto ladder = std::make_shared<const govern::LadderPolicy>(gopts.ladder);
  std::vector<govern::OverloadPhase> script;
  for (const auto& phase : govern::OverloadInjector::CalmScript(8)) {
    script.push_back(phase);
  }
  for (const auto& phase :
       govern::OverloadInjector::SaturationScript(40)) {
    script.push_back(phase);
  }
  for (const auto& phase : govern::OverloadInjector::CalmScript(8)) {
    script.push_back(phase);
  }
  auto gate = govern::GovernorGate::Make(
      std::make_unique<engine::VectorScan>(TsSchema(),
                                           TsStream(kGovernedTuples)),
      std::make_unique<govern::OverloadInjector>(std::move(script)), gopts);
  AUSDB_CHECK(gate.ok()) << gate.status().ToString();
  const govern::GovernorGate* gate_view = gate->get();

  stream::SupervisedScanOptions sopts;
  sopts.retry.max_attempts = 100000;
  sopts.retry.initial_backoff_seconds = 0.0;
  sopts.retry.jitter_fraction = 0.0;
  auto supervised = std::make_unique<stream::SupervisedScan>(
      std::move(*gate), sopts);
  const stream::SupervisedScan* supervised_view = supervised.get();

  engine::ReorderBufferOptions ropts;
  ropts.lateness_bound = 4.0;
  ropts.ladder = ladder;
  auto rb =
      engine::ReorderBuffer::Make(std::move(supervised), "ts", ropts);
  AUSDB_CHECK(rb.ok()) << rb.status().ToString();

  auto delivered = engine::Drain(**rb);
  AUSDB_CHECK(delivered.ok()) << delivered.status().ToString();

  const auto& gstats = gate_view->governor().stats();
  const auto& rstats = (*rb)->stats();
  std::printf(
      "saturation burst: delivered=%zu/%zu shed=%zu early_releases=%zu "
      "escalations=%zu refusal_epochs=%zu retries=%zu\n",
      *delivered, kGovernedTuples, rstats.shed, rstats.early_releases,
      gstats.escalations, gstats.refusal_epochs,
      supervised_view->counters().retries);
  results.AddRow(
      {{"delivered", static_cast<double>(*delivered)},
       {"admitted", static_cast<double>(kGovernedTuples)},
       {"shed", static_cast<double>(rstats.shed)},
       {"early_releases", static_cast<double>(rstats.early_releases)},
       {"escalations", static_cast<double>(gstats.escalations)},
       {"refusal_epochs", static_cast<double>(gstats.refusal_epochs)},
       {"retries",
        static_cast<double>(supervised_view->counters().retries)}});

  if (!results.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());

  bool failed = false;
  if (best_ratio > max_ratio) {
    std::fprintf(stderr, "FAIL: governor-idle ratio %.3f exceeds %.3f\n",
                 best_ratio, max_ratio);
    failed = true;
  }
  if (*delivered != kGovernedTuples || rstats.shed != 0) {
    std::fprintf(stderr,
                 "FAIL: saturation dropped data (delivered %zu of %zu, "
                 "shed %zu)\n",
                 *delivered, kGovernedTuples, rstats.shed);
    failed = true;
  }
  if (gstats.escalations == 0) {
    std::fprintf(stderr,
                 "FAIL: saturation burst never escalated the ladder\n");
    failed = true;
  }
  if (failed) return 1;
  std::printf("PASS\n");
  return 0;
}
