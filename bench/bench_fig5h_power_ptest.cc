// Figure 5(h): power of the coupled pTest vs the threshold tau, for the
// five synthetic families (delta = 0.3 fixed, n = 20,
// alpha1 = alpha2 = 0.05).
//
// The predicate is X > v with v chosen so the true Pr(X > v) equals
// tau * (1 + delta), making H1 ("Pr[pred] > tau") true; power is the
// rate of TRUE returns. Because the decision is quantile-based, the
// curves are nearly identical across families (the paper's observation).

#include <vector>

#include "bench/figure_common.h"
#include "src/dist/learner.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/hypothesis/power.h"
#include "src/workload/synthetic.h"

using namespace ausdb;

int main() {
  bench::Banner("Figure 5(h)",
                "power of coupled pTest vs tau (delta=0.3, n=20)");

  constexpr size_t kN = 20;
  constexpr size_t kTrials = 2000;
  constexpr double kDelta = 0.3;
  Rng rng(58);

  std::vector<std::string> header = {"tau"};
  for (workload::Family f : workload::kAllFamilies) {
    header.emplace_back(workload::FamilyToString(f));
  }
  bench::PrintRow(header, 13);

  for (double tau : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const double true_prob = tau * (1.0 + kDelta);  // <= 0.91 for tau<=0.7
    std::vector<std::string> row = {bench::Fmt(tau, 1)};
    for (workload::Family f : workload::kAllFamilies) {
      // v with Pr(X > v) = true_prob, i.e. the (1 - true_prob) quantile.
      const double v = workload::FamilyQuantile(f, 1.0 - true_prob);
      auto run_once = [&]() {
        const auto sample = workload::SampleFamilyMany(rng, f, kN);
        auto learned = dist::LearnEmpirical(sample);
        dist::RandomVar x(*learned);
        auto outcome = hypothesis::CoupledPTest(
            x, {hypothesis::CompareOp::kGt, v}, tau, 0.05, 0.05);
        return outcome.ok() ? *outcome : hypothesis::TestOutcome::kUnsure;
      };
      const auto est = hypothesis::EstimatePower(kTrials, run_once);
      row.push_back(bench::Fmt(est.Power(), 3));
    }
    bench::PrintRow(row, 13);
  }
  std::printf(
      "\nExpected shape (paper): power rises with tau at about the same "
      "rate for\nall five families (quantile-based decisions are "
      "distribution-independent).\n");
  return 0;
}
