// Accuracy-target cost-model acceptance bench, CI-gated on two
// promises:
//
//  1. Choosing pays: at a loose target where the analytical path
//     suffices, a `WITH ACCURACY <eps>` plan (cost model picks the
//     method) beats the same pipeline pinned to `WITH ACCURACY
//     BOOTSTRAP` by at least 1.2x throughput.
//  2. Choosing stays honest: every configuration the chooser can select
//     at the bench target holds its stated confidence empirically —
//     zero conformance violations — so the speedup is never bought with
//     intervals that lie.
//
// Run with no arguments for the default 1.2x bar, or pass
// `--min-speedup=<r>` to move it. Results are written to
// BENCH_accuracy_target.json (override with --out=<path>). Exits
// non-zero when either gate fails, so CI can gate on it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/figure_common.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/govern/cost_model.h"
#include "src/query/planner.h"
#include "src/stream/sources.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 40000;
constexpr size_t kPointsPerItem = 20;
constexpr double kMu = 10.0;
constexpr double kSigma = 2.0;
constexpr int kReps = 3;

// Loose enough that the analytical t-interval (~0.77 at n=20, s~2)
// meets it, so the chooser's cheap path genuinely suffices.
constexpr double kLooseEpsilon = 1.0;
constexpr double kConfidence = 0.9;

// Conformance mini-harness: same pre-registered shape as
// tests/accuracy_conformance_test.cc, sized for a CI gate.
constexpr size_t kConfTrials = 500;
constexpr double kConfTolerance = 0.05;

engine::OperatorPtr Source(size_t count, uint64_t seed) {
  return stream::MakeLearnedGaussianSource("x", count, kPointsPerItem, kMu,
                                           kSigma, seed);
}

engine::OperatorPtr MakePlan(const std::string& sql, uint64_t seed) {
  auto plan = query::PlanQuery(sql, Source(kTuples, seed), {});
  AUSDB_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(*plan);
}

/// Empirical mean-interval coverage of the annotator configured as
/// `spec` prescribes, over kConfTrials independently learned fields.
double MeanCoverage(const govern::MethodSpec& spec, uint64_t seed) {
  engine::AccuracyAnnotatorOptions options;
  options.confidence = kConfidence;
  options.method = spec.method;
  if (spec.is_bootstrap()) {
    options.bootstrap_resamples = spec.bootstrap_resamples;
  }
  options.seed = seed ^ 0xC0FFEEull;
  engine::AccuracyAnnotator annotator(Source(kConfTrials, seed), options);
  auto out = engine::Collect(annotator);
  AUSDB_CHECK(out.ok()) << out.status().ToString();
  size_t covered = 0;
  for (const engine::Tuple& t : *out) {
    const auto& info = t.accuracy()[0];
    AUSDB_CHECK(info.has_value() && info->mean_ci.has_value());
    if (info->mean_ci->Contains(kMu)) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(out->size());
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 1.2;
  std::string out_path = "BENCH_accuracy_target.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  bench::Banner("Accuracy-target cost model",
                "chooser throughput and statistical conformance");
  bench::JsonResultsWriter results("accuracy_target");

  // -- Gate 1: chooser vs always-bootstrap at a loose target ----------
  // Back-to-back paired runs; the largest per-pair speedup is the bound
  // (machine drift hits both sides of a pair).
  char target_sql[160];
  std::snprintf(target_sql, sizeof(target_sql),
                "SELECT * FROM s WITH ACCURACY %.2f CONFIDENCE %.2f",
                kLooseEpsilon, kConfidence);
  const std::string bootstrap_sql =
      "SELECT * FROM s WITH ACCURACY BOOTSTRAP CONFIDENCE 0.90";

  double chooser_best = 0.0, bootstrap_best = 0.0, best_speedup = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto pinned = MakePlan(bootstrap_sql, /*seed=*/97 + rep);
    const double pinned_tps = bench::MeasureTuplesPerSecond(*pinned);
    auto chosen = MakePlan(target_sql, /*seed=*/97 + rep);
    const double chosen_tps = bench::MeasureTuplesPerSecond(*chosen);
    chooser_best = std::max(chooser_best, chosen_tps);
    bootstrap_best = std::max(bootstrap_best, pinned_tps);
    best_speedup = std::max(best_speedup, chosen_tps / pinned_tps);
  }

  bench::PrintRow({"plan", "tuples/s", "speedup"}, 22);
  bench::PrintRow(
      {"always-bootstrap", bench::FmtInt(bootstrap_best), "1.000"}, 22);
  bench::PrintRow({"accuracy target", bench::FmtInt(chooser_best),
                   bench::Fmt(best_speedup, 3)},
                  22);
  std::printf("chooser speedup: %.3fx (bar: %.2fx)\n", best_speedup,
              min_speedup);
  results.AddRow({{"chooser_tps", chooser_best},
                  {"bootstrap_tps", bootstrap_best},
                  {"speedup", best_speedup},
                  {"epsilon", kLooseEpsilon}});

  // -- Gate 2: zero conformance violations ----------------------------
  // Every spec the chooser can put in force at the bench target must
  // hold its stated confidence empirically.
  govern::AccuracyTarget target;
  target.epsilon = kLooseEpsilon;
  target.confidence = kConfidence;
  size_t violations = 0;
  std::vector<std::pair<size_t, double>> seen;  // (resamples key, coverage)
  for (const govern::MethodSpec& spec : govern::MethodChooser::
           SelectableSpecs(target, govern::ChooserOptions{})) {
    // merge is a no-op on this Gaussian workload: memoize per method/r.
    const size_t key =
        spec.is_bootstrap() ? spec.bootstrap_resamples : 0;
    double coverage = -1.0;
    for (const auto& [k, v] : seen) {
      if (k == key) coverage = v;
    }
    if (coverage < 0.0) {
      coverage = MeanCoverage(spec, /*seed=*/0x5EEDull + key);
      seen.push_back({key, coverage});
      std::printf("conformance %-22s coverage %.3f (target %.2f-%.2f)\n",
                  spec.ToString().c_str(), coverage, kConfidence,
                  kConfTolerance);
      results.AddRow({{"resamples", static_cast<double>(key)},
                      {"coverage", coverage},
                      {"stated", kConfidence}});
    }
    if (coverage < kConfidence - kConfTolerance) ++violations;
  }

  if (!results.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());

  bool failed = false;
  if (best_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: chooser speedup %.3f below %.3f\n",
                 best_speedup, min_speedup);
    failed = true;
  }
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %zu conformance violation(s)\n",
                 violations);
    failed = true;
  }
  if (failed) return 1;
  std::printf("PASS\n");
  return 0;
}
