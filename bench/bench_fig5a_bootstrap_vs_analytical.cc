// Figure 5(a): bootstrap vs analytical accuracy information in query
// results, on both workloads the paper uses:
//  * route total-delay queries on the (simulated) road-delay data
//    (~20 segments per route), and
//  * random queries (six operators, five synthetic families).
//
// Reported per statistic (bin heights, mean, variance):
//  * the average ratio of bootstrap to analytical CI length, and
//  * the miss rates of both methods against ground truth.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "bench/figure_common.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/learner.h"
#include "src/expr/evaluator.h"
#include "src/stats/descriptive.h"
#include "src/workload/cartel.h"
#include "src/workload/family_distribution.h"
#include "src/workload/random_query.h"

using namespace ausdb;

namespace {

constexpr size_t kSourceSampleSize = 20;  // n per input field
// m = 20n => r = 20 d.f. resamples, the proportions of the paper's
// Example 7 (m = 300, n = 15).
constexpr size_t kMcValues = 20 * kSourceSampleSize;
constexpr size_t kTruthValues = 40000;
constexpr double kConfidence = 0.9;
// Coarse histograms, as in the paper's Example 2 (four buckets).
constexpr size_t kBins = 4;

struct Tally {
  double ratio_sum = 0.0;
  size_t ratio_count = 0;
  size_t boot_checks = 0, boot_misses = 0;
  size_t ana_checks = 0, ana_misses = 0;

  void AddRatio(double boot_len, double ana_len) {
    if (ana_len > 0.0 && std::isfinite(ana_len) &&
        std::isfinite(boot_len)) {
      ratio_sum += boot_len / ana_len;
      ++ratio_count;
    }
  }
  void AddMiss(bool boot_miss, bool ana_miss) {
    ++boot_checks;
    ++ana_checks;
    boot_misses += boot_miss ? 1 : 0;
    ana_misses += ana_miss ? 1 : 0;
  }
  double Ratio() const {
    return ratio_count == 0 ? 0.0 : ratio_sum / ratio_count;
  }
  double BootMissRate() const {
    return boot_checks == 0
               ? 0.0
               : static_cast<double>(boot_misses) / boot_checks;
  }
  double AnaMissRate() const {
    return ana_checks == 0 ? 0.0
                           : static_cast<double>(ana_misses) / ana_checks;
  }
};

struct Tallies {
  Tally bins, mean, variance;
};

// Runs one query case: `expression` over `learned_row` (inputs carrying
// n=20 learned samples) with ground truth from `truth_row` (inputs
// carrying the exact distributions). Returns false if the query was
// numerically degenerate (division blow-ups) and should be redrawn.
bool RunCase(const expr::Expr& expression,
             const std::vector<std::string>& names,
             const std::vector<expr::Value>& learned_row,
             const std::vector<expr::Value>& truth_row, uint64_t seed,
             double extreme_bound, Tallies* tallies) {
  expr::EvalOptions mc_opts;
  mc_opts.prefer_closed_form = false;  // always produce a value sequence
  mc_opts.mc_samples = kMcValues;
  mc_opts.seed = seed;
  expr::Evaluator mc_eval(mc_opts);
  auto learned_value = mc_eval.Evaluate(
      expression, expr::Row{&names, &learned_row});
  if (!learned_value.ok() || !learned_value->is_random_var()) return false;
  const dist::RandomVar rv = *learned_value->random_var();
  const auto& mc_values = *rv.raw_sample();

  expr::EvalOptions truth_opts = mc_opts;
  truth_opts.mc_samples = kTruthValues;
  truth_opts.seed = seed ^ 0x5EEDull;
  expr::Evaluator truth_eval(truth_opts);
  auto truth_value =
      truth_eval.Evaluate(expression, expr::Row{&names, &truth_row});
  if (!truth_value.ok() || !truth_value->is_random_var()) return false;
  const auto& truth_draws = *truth_value->random_var()->raw_sample();

  // Degenerate-query guard: division blow-ups make every method's
  // interval meaningless; the paper's queries are implicitly well
  // behaved.
  // Results whose draws stray beyond this are dominated by division
  // blow-ups (effectively infinite variance) and are redrawn — the
  // paper's random queries are implicitly well behaved.
  const auto extreme = [extreme_bound](double v) {
    return !std::isfinite(v) || std::abs(v) > extreme_bound;
  };
  if (std::any_of(mc_values.begin(), mc_values.end(), extreme) ||
      std::any_of(truth_draws.begin(), truth_draws.end(), extreme)) {
    return false;
  }

  const auto truth_stats = stats::Summarize(truth_draws);

  // Shared histogram edges from the learned result sample.
  dist::HistogramLearnOptions hopts;
  hopts.bin_count = kBins;
  auto edges = dist::ComputeBinEdges(mc_values, hopts);
  if (!edges.ok()) return false;

  const size_t n = rv.sample_size();

  // --- Bootstrap path: the paper's algorithm on the MC value sequence.
  auto boot =
      bootstrap::BootstrapAccuracyInfo(mc_values, n, kConfidence, *edges);
  if (!boot.ok()) return false;

  // --- Analytical path: Theorem 1 on the result distribution.
  auto ana_mean = accuracy::MeanInterval(rv.Mean(), rv.StdDev(), n,
                                         kConfidence);
  auto ana_var = accuracy::VarianceInterval(rv.StdDev(), n, kConfidence);
  if (!ana_mean.ok() || !ana_var.ok()) return false;

  const auto learned_counts = dist::CountBins(mc_values, *edges);
  const auto truth_counts = dist::CountBins(truth_draws, *edges);
  for (size_t b = 0; b < kBins; ++b) {
    const double p_learned = static_cast<double>(learned_counts[b]) /
                             static_cast<double>(mc_values.size());
    auto ana_bin = accuracy::ProportionInterval(p_learned, n, kConfidence);
    if (!ana_bin.ok()) return false;
    const double truth_p = static_cast<double>(truth_counts[b]) /
                           static_cast<double>(truth_draws.size());
    tallies->bins.AddRatio(boot->bin_cis[b].Length(), ana_bin->Length());
    tallies->bins.AddMiss(!boot->bin_cis[b].Contains(truth_p),
                          !ana_bin->Contains(truth_p));
  }

  tallies->mean.AddRatio(boot->mean_ci->Length(), ana_mean->Length());
  tallies->mean.AddMiss(!boot->mean_ci->Contains(truth_stats.mean),
                        !ana_mean->Contains(truth_stats.mean));
  tallies->variance.AddRatio(boot->variance_ci->Length(),
                             ana_var->Length());
  tallies->variance.AddMiss(
      !boot->variance_ci->Contains(truth_stats.sample_variance),
      !ana_var->Contains(truth_stats.sample_variance));
  return true;
}

void PrintTallies(const char* label, const Tallies& tallies) {
  std::printf("\n[%s]\n", label);
  bench::PrintRow({"statistic", "len_ratio", "boot_miss", "ana_miss"},
                  16);
  bench::PrintRow({"bin_heights", bench::Fmt(tallies.bins.Ratio(), 3),
                   bench::Fmt(tallies.bins.BootMissRate(), 3),
                   bench::Fmt(tallies.bins.AnaMissRate(), 3)},
                  16);
  bench::PrintRow({"mean", bench::Fmt(tallies.mean.Ratio(), 3),
                   bench::Fmt(tallies.mean.BootMissRate(), 3),
                   bench::Fmt(tallies.mean.AnaMissRate(), 3)},
                  16);
  bench::PrintRow({"variance", bench::Fmt(tallies.variance.Ratio(), 3),
                   bench::Fmt(tallies.variance.BootMissRate(), 3),
                   bench::Fmt(tallies.variance.AnaMissRate(), 3)},
                  16);
}

}  // namespace

int main() {
  bench::Banner("Figure 5(a)",
                "bootstrap vs analytical accuracy of query results");

  Tallies route_tallies, random_tallies;
  Rng rng(51);

  // --- Workload 1: route total-delay queries on simulated CarTel data.
  {
    workload::CartelOptions copts;
    copts.num_segments = 120;
    copts.observations_per_segment = 800;
    copts.route_length = 20;
    workload::CartelSimulator sim(copts);
    int done = 0;
    while (done < 40) {
      const auto route = sim.MakeRoute(rng);
      std::vector<std::string> names;
      std::vector<expr::Value> learned_row, truth_row;
      expr::ExprPtr sum;
      for (size_t i = 0; i < route.size(); ++i) {
        names.push_back("seg" + std::to_string(i));
        auto sample = sim.DrawSample(route[i], kSourceSampleSize, rng);
        auto learned = dist::LearnEmpirical(*sample);
        learned_row.emplace_back(dist::RandomVar(*learned));
        // Truth: resampling the full population is (approximately) the
        // true per-segment delay distribution.
        auto pop = dist::LearnEmpirical(sim.Population(route[i]));
        truth_row.emplace_back(dist::RandomVar(*pop));
        auto col = expr::Col(names.back());
        sum = sum == nullptr ? col : expr::Add(sum, col);
      }
      if (RunCase(*sum, names, learned_row, truth_row, rng.NextUint64(),
                  /*extreme_bound=*/1e7, &route_tallies)) {
        ++done;
      }
    }
  }

  // --- Workload 2: random queries over the five synthetic families.
  {
    int done = 0;
    while (done < 60) {
      workload::RandomQueryOptions qopts;
      qopts.num_columns = 3;
      qopts.num_operators = 4;
      const auto q = GenerateRandomQuery(rng, qopts);
      std::vector<expr::Value> learned_row, truth_row;
      bool ok = true;
      for (workload::Family f : q.families) {
        const auto sample =
            workload::SampleFamilyMany(rng, f, kSourceSampleSize);
        auto learned = dist::LearnEmpirical(sample);
        if (!learned.ok()) {
          ok = false;
          break;
        }
        learned_row.emplace_back(dist::RandomVar(*learned));
        truth_row.emplace_back(dist::RandomVar(
            std::make_shared<workload::FamilyDist>(f), kSourceSampleSize));
      }
      if (!ok) continue;
      if (RunCase(*q.expression, q.column_names, learned_row, truth_row,
                  rng.NextUint64(), /*extreme_bound=*/1e3,
                  &random_tallies)) {
        ++done;
      }
    }
  }

  PrintTallies("route total-delay queries (CarTel sim)", route_tallies);
  PrintTallies("random queries (synthetic families)", random_tallies);
  std::printf(
      "\nExpected shape (paper): bootstrap intervals shorter — slightly "
      "for bin\nheights, substantially for mean and variance on the "
      "near-normal route\nworkload; bootstrap miss rates stay low. "
      "Heavy-tailed random queries\nstress the analytical normality "
      "assumption hardest.\n");
  return 0;
}
