// Figure 4(b): sample size n vs normalized confidence-interval length for
// the three statistics — bin heights, mean, and variance — on the
// simulated road-delay dataset. Each series is normalized by its length
// at n = 10 so all three fit one plot (as in the paper).

#include <map>

#include "bench/figure_common.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/common/rng.h"
#include "src/dist/histogram.h"
#include "src/dist/learner.h"
#include "src/workload/cartel.h"

using namespace ausdb;

namespace {

struct Lengths {
  double bins = 0.0;
  double mean = 0.0;
  double variance = 0.0;
};

}  // namespace

int main() {
  bench::Banner("Figure 4(b)",
                "n vs normalized CI length (bin heights, mean, variance)");

  workload::CartelOptions opts;
  opts.num_segments = 100;
  opts.observations_per_segment = 800;
  workload::CartelSimulator sim(opts);
  Rng rng(42);

  constexpr int kTrialsPerSegment = 20;
  const std::vector<size_t> ns = {10, 20, 30, 40, 50, 60, 70, 80};

  std::map<size_t, Lengths> avg;
  for (size_t n : ns) {
    Lengths sum;
    size_t count = 0;
    for (size_t seg = 0; seg < sim.num_segments(); ++seg) {
      // Shared bin edges from the population range, so bin-height CIs
      // are comparable across n.
      dist::HistogramLearnOptions hopts;
      hopts.bin_count = 10;
      auto edges = dist::ComputeBinEdges(sim.Population(seg), hopts);
      dist::HistogramLearnOptions sample_opts;
      sample_opts.policy = dist::BinningPolicy::kExplicitEdges;
      sample_opts.edges = *edges;

      for (int trial = 0; trial < kTrialsPerSegment; ++trial) {
        auto sample = sim.DrawSample(seg, n, rng);
        auto learned = dist::LearnHistogram(*sample, sample_opts);
        const auto& hist = static_cast<const dist::HistogramDist&>(
            *learned->distribution);
        double bin_total = 0.0;
        for (size_t b = 0; b < hist.bin_count(); ++b) {
          auto ci = accuracy::ProportionInterval(hist.BinProb(b), n, 0.9);
          bin_total += ci->Length();
        }
        sum.bins += bin_total / static_cast<double>(hist.bin_count());
        sum.mean += accuracy::MeanIntervalFromSample(*sample, 0.9)->Length();
        sum.variance +=
            accuracy::VarianceIntervalFromSample(*sample, 0.9)->Length();
        ++count;
      }
    }
    avg[n] = {sum.bins / count, sum.mean / count, sum.variance / count};
  }

  const Lengths base = avg[ns.front()];
  bench::PrintRow({"n", "bin_heights", "mean", "variance"});
  for (size_t n : ns) {
    bench::PrintRow({std::to_string(n),
                     bench::Fmt(avg[n].bins / base.bins, 3),
                     bench::Fmt(avg[n].mean / base.mean, 3),
                     bench::Fmt(avg[n].variance / base.variance, 3)});
  }
  std::printf(
      "\nExpected shape (paper): all three series decrease from 1.0 as n "
      "grows, roughly like 1/sqrt(n).\n");
  return 0;
}
