// Scaling of the parallel execution layer (google-benchmark): histogram
// convolution, bootstrap resampling and the sharded partitioned window
// at thread counts {0 = serial engine, 1, 2, 4, 8}. Thread count 0 runs
// the no-pool serial path; 1 runs the same chunk decomposition through a
// one-worker pool, so comparing the two rows isolates the pool's
// dispatch overhead (the acceptance bar: within a few percent). Rows
// with more workers than hardware cores measure oversubscription, not
// speedup.

#include <benchmark/benchmark.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/common/thread_pool.h"
#include "src/dist/convolution.h"
#include "src/dist/gaussian.h"
#include "src/dist/histogram.h"
#include "src/dist/learner.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"

using namespace ausdb;

namespace {

std::unique_ptr<ThreadPool> MakePool(int threads) {
  return threads > 0 ? std::make_unique<ThreadPool>(threads) : nullptr;
}

// --- 512-bin convolution, subdivisions = 4 (the acceptance workload).

void BM_ConvolveHistograms512(benchmark::State& state) {
  std::vector<double> edges;
  std::vector<double> probs;
  const size_t bins = 64;
  for (size_t i = 0; i <= bins; ++i) {
    edges.push_back(static_cast<double>(i));
  }
  for (size_t i = 0; i < bins; ++i) {
    probs.push_back(1.0 / static_cast<double>(bins));
  }
  auto a = dist::HistogramDist::Make(edges, probs);
  auto b = dist::HistogramDist::Make(edges, probs);
  if (!a.ok() || !b.ok()) {
    state.SkipWithError("histogram construction failed");
    return;
  }
  auto pool = MakePool(static_cast<int>(state.range(0)));
  dist::ConvolveOptions opts;
  opts.output_bins = 512;
  opts.subdivisions = 4;
  opts.pool = pool.get();
  for (auto _ : state) {
    auto sum = dist::ConvolveHistograms(*a, *b, opts);
    if (!sum.ok()) {
      state.SkipWithError("convolution failed");
      return;
    }
    benchmark::DoNotOptimize(sum->probs().data());
  }
}
BENCHMARK(BM_ConvolveHistograms512)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Percentile bootstrap, 1000 resamples of a 1000-value sample.

void BM_ParallelBootstrap(benchmark::State& state) {
  std::vector<double> sample(1000);
  for (size_t i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<double>(i % 97) * 1.5;
  }
  const auto stat = [](std::span<const double> s) {
    double m = 0.0;
    for (double v : s) m += v;
    return m / static_cast<double>(s.size());
  };
  auto pool = MakePool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Rng rng(42);
    auto ci = bootstrap::ParallelPercentileBootstrap(sample, 1000, 0.95,
                                                     stat, rng, pool.get());
    if (!ci.ok()) {
      state.SkipWithError("bootstrap failed");
      return;
    }
    benchmark::DoNotOptimize(ci->lo);
  }
}
BENCHMARK(BM_ParallelBootstrap)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Sharded partitioned window drain over >= 1000 distinct keys.

void BM_ShardedWindowDrain(benchmark::State& state) {
  engine::Schema schema;
  if (!schema.AddField({"k", engine::FieldType::kString}).ok() ||
      !schema.AddField({"x", engine::FieldType::kUncertain}).ok()) {
    state.SkipWithError("schema construction failed");
    return;
  }
  const size_t kKeys = 1024;
  const size_t kTuples = 32768;
  std::vector<engine::Tuple> tuples;
  tuples.reserve(kTuples);
  for (size_t i = 0; i < kTuples; ++i) {
    tuples.push_back(engine::Tuple(
        {expr::Value("key" + std::to_string(i % kKeys)),
         expr::Value(dist::RandomVar(
             std::make_shared<dist::GaussianDist>(
                 static_cast<double>(i % 211), 1.0 + (i % 7)),
             20 + i % 30))}));
  }
  auto pool = MakePool(static_cast<int>(state.range(0)));
  engine::ShardedWindowOptions opts;
  opts.window.window_size = 16;
  opts.num_shards = 16;
  opts.batch_size = 2048;
  for (auto _ : state) {
    auto scan = std::make_unique<engine::VectorScan>(schema, tuples);
    auto agg = engine::ShardedPartitionedWindowAggregate::Make(
        std::move(scan), "k", "x", "agg", opts);
    if (!agg.ok()) {
      state.SkipWithError("operator construction failed");
      return;
    }
    auto n = pool ? engine::ParallelDrain(**agg, *pool)
                  : engine::Drain(**agg);
    if (!n.ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    benchmark::DoNotOptimize(*n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTuples));
}
BENCHMARK(BM_ShardedWindowDrain)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
