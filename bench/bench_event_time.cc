// Event-time overhead bench: what does the bounded-lateness
// ReorderBuffer cost on top of a revising time-window pipeline, as a
// function of how disordered the stream actually is?
//
// For each disorder fraction in {0, 1%, 10%} the same seeded stream
// (ReplayableEventTimeSource -> DisorderInjector) is drained twice —
// once straight into the window, once through a ReorderBuffer sized to
// absorb the injected displacement — in back-to-back paired runs, so
// machine drift hits both arms of every pair.
//
// The acceptance bar is the 0%-disorder row: a reorder stage on an
// already-ordered stream must cost at most 5% throughput (every tuple
// is releasable as soon as the next one advances the watermark, so the
// buffer never grows past a handful of entries). Pass `--max-ratio=<r>`
// to move the bar; exits non-zero when it is exceeded, so CI gates on
// it. Results are also written to BENCH_eventtime.json (override the
// path with `--out=<path>`).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "src/engine/executor.h"
#include "src/engine/reorder_buffer.h"
#include "src/engine/time_window_aggregate.h"
#include "src/stream/disorder_injector.h"
#include "src/stream/sources.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 60000;
constexpr size_t kPointsPerItem = 20;
constexpr double kWindowDuration = 1000.0;
constexpr size_t kMaxDisplacement = 16;
constexpr int kReps = 5;

/// Prepends a deterministic event-time column (ts = arrival index at
/// unit step) to a child stream, preserving sequence numbers — turns
/// the Section V-C learned-Gaussian stream into a timestamped one
/// without materializing it up front, so the per-tuple inference cost
/// stays inside the measured loop like in the figure benches.
class TsStamp final : public engine::Operator {
 public:
  explicit TsStamp(engine::OperatorPtr child) : child_(std::move(child)) {
    AUSDB_CHECK(
        schema_.AddField({"ts", engine::FieldType::kDouble}).ok());
    for (size_t i = 0; i < child_->schema().num_fields(); ++i) {
      AUSDB_CHECK(schema_.AddField(child_->schema().field(i)).ok());
    }
  }
  const engine::Schema& schema() const override { return schema_; }
  Result<std::optional<engine::Tuple>> Next() override {
    AUSDB_ASSIGN_OR_RETURN(std::optional<engine::Tuple> t,
                           child_->Next());
    if (!t.has_value()) return std::optional<engine::Tuple>(std::nullopt);
    std::vector<expr::Value> values;
    values.reserve(t->num_values() + 1);
    values.emplace_back(static_cast<double>(next_ts_));
    for (size_t i = 0; i < t->num_values(); ++i) {
      values.push_back(t->value(i));
    }
    engine::Tuple out(std::move(values));
    out.set_sequence(next_ts_);
    ++next_ts_;
    return std::optional<engine::Tuple>(std::move(out));
  }
  Status Reset() override {
    next_ts_ = 0;
    return child_->Reset();
  }
  Status Close() override { return child_->Close(); }

 private:
  engine::OperatorPtr child_;
  engine::Schema schema_;
  uint64_t next_ts_ = 0;
};

/// The event-time pipeline: the Section V-C learned-Gaussian stream
/// (distributions inferred lazily, kPointsPerItem draws per tuple),
/// timestamped, run through a seeded disorder injector shuffling
/// `disorder_fraction` of the tuples within kMaxDisplacement positions,
/// into a revising sliding time window. With `with_reorder` a
/// ReorderBuffer sized one past the displacement bound restores
/// event-time order in between.
engine::OperatorPtr MakePipeline(double disorder_fraction,
                                 bool with_reorder) {
  auto source = stream::MakeLearnedGaussianSource(
      "x", kTuples, kPointsPerItem, 10.0, 2.0, /*seed=*/71);
  engine::OperatorPtr plan =
      std::make_unique<TsStamp>(std::move(source));

  stream::DisorderSpec spec;
  spec.max_displacement = disorder_fraction > 0.0 ? kMaxDisplacement : 0;
  spec.shuffle_probability = disorder_fraction;
  spec.seed = 0xbe7c;
  plan = std::make_unique<stream::DisorderInjector>(std::move(plan), spec);

  if (with_reorder) {
    engine::ReorderBufferOptions ro;
    // Displacement <= kMaxDisplacement positions at time step 1 means
    // event-time lag <= kMaxDisplacement; IsLate is inclusive, so the
    // bound must strictly exceed it.
    ro.lateness_bound = static_cast<double>(kMaxDisplacement) + 1.0;
    auto rb = engine::ReorderBuffer::Make(std::move(plan), "ts", ro);
    AUSDB_CHECK(rb.ok()) << rb.status().ToString();
    plan = std::move(*rb);
  }

  engine::TimeWindowOptions two;
  two.duration = kWindowDuration;
  two.require_ordered = false;
  two.emit_revisions = true;
  two.allowed_lateness = 2.0 * kMaxDisplacement;
  auto agg = engine::TimeWindowAggregate::Make(std::move(plan), "ts", "x",
                                               "avg", two);
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  return std::move(*agg);
}

/// Input tuples per second, not output: the two arms emit different
/// revision counts under disorder, so draining throughput would compare
/// unequal output volumes.
double MeasureInputTuplesPerSecond(engine::Operator& plan) {
  stream::ThroughputMeter meter;
  meter.Start();
  auto count = engine::Drain(plan);
  AUSDB_CHECK(count.ok()) << count.status().ToString();
  meter.Count(kTuples);
  meter.Stop();
  return meter.TuplesPerSecond();
}

}  // namespace

int main(int argc, char** argv) {
  double max_ratio = 1.05;
  std::string out_path = "BENCH_eventtime.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  bench::Banner("Event-time overhead",
                "ReorderBuffer cost by disorder fraction");
  bench::PrintRow({"disorder", "plain t/s", "reorder t/s", "ratio"}, 16);

  bench::JsonResultsWriter results("eventtime");
  double ordered_ratio = 1e9;
  for (double fraction : {0.0, 0.01, 0.10}) {
    // Paired back-to-back runs; the smallest per-pair ratio is the
    // honest overhead bound (same idiom as bench_obs_overhead).
    double plain_best = 0.0, reorder_best = 0.0, best_ratio = 1e9;
    for (int rep = 0; rep < kReps; ++rep) {
      auto plain_plan = MakePipeline(fraction, /*with_reorder=*/false);
      const double plain = MeasureInputTuplesPerSecond(*plain_plan);
      auto reorder_plan = MakePipeline(fraction, /*with_reorder=*/true);
      const double reorder = MeasureInputTuplesPerSecond(*reorder_plan);
      plain_best = std::max(plain_best, plain);
      reorder_best = std::max(reorder_best, reorder);
      best_ratio = std::min(best_ratio, plain / reorder);
    }
    if (fraction == 0.0) ordered_ratio = best_ratio;

    bench::PrintRow({bench::Fmt(fraction, 2), bench::FmtInt(plain_best),
                     bench::FmtInt(reorder_best),
                     bench::Fmt(best_ratio, 3)},
                    16);
    results.AddRow({{"disorder_fraction", fraction},
                    {"plain_tuples_per_sec", plain_best},
                    {"reorder_tuples_per_sec", reorder_best},
                    {"overhead_ratio", best_ratio}});
  }

  if (!results.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());
  std::printf("ordered-stream reorder overhead: %.2f%% (bar: %.2f%%)\n",
              (ordered_ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);

  if (ordered_ratio > max_ratio) {
    std::fprintf(stderr,
                 "FAIL: reorder overhead ratio %.3f at 0%% disorder "
                 "exceeds %.3f\n",
                 ordered_ratio, max_ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
