// Figure 5(b): bootstrap vs analytical CI lengths when the query result
// is exactly normal — random queries restricted to normal input
// distributions and the {+, -} operators (paper Section V-C). The gap
// between the methods narrows because the analytical normality
// assumption now holds.

#include <cmath>
#include <vector>

#include "bench/figure_common.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/bootstrap/bootstrap_accuracy.h"
#include "src/dist/learner.h"
#include "src/expr/evaluator.h"
#include "src/workload/random_query.h"

using namespace ausdb;

int main() {
  bench::Banner("Figure 5(b)",
                "bootstrap/analytical CI length ratio, Gaussian results");

  constexpr size_t kN = 20;
  constexpr size_t kM = 20 * kN;  // r = 20 d.f. resamples
  constexpr size_t kBins = 4;
  constexpr double kConfidence = 0.9;
  constexpr int kQueries = 150;

  Rng rng(52);
  double bin_ratio = 0.0, mean_ratio = 0.0, var_ratio = 0.0;
  size_t bin_count = 0;
  int done = 0;

  while (done < kQueries) {
    workload::RandomQueryOptions qopts;
    qopts.num_columns = 3;
    qopts.num_operators = 4;
    qopts.normal_only_linear = true;
    const auto q = GenerateRandomQuery(rng, qopts);

    std::vector<expr::Value> row;
    bool ok = true;
    for (workload::Family f : q.families) {
      const auto sample = workload::SampleFamilyMany(rng, f, kN);
      auto learned = dist::LearnGaussian(sample);
      if (!learned.ok()) {
        ok = false;
        break;
      }
      row.emplace_back(dist::RandomVar(*learned));
    }
    if (!ok) continue;

    expr::EvalOptions opts;
    opts.prefer_closed_form = false;  // need the MC value sequence
    opts.mc_samples = kM;
    opts.seed = rng.NextUint64();
    expr::Evaluator eval(opts);
    auto value =
        eval.Evaluate(*q.expression, expr::Row{&q.column_names, &row});
    if (!value.ok() || !value->is_random_var()) continue;
    const dist::RandomVar rv = *value->random_var();
    const auto& mc_values = *rv.raw_sample();

    dist::HistogramLearnOptions hopts;
    hopts.bin_count = kBins;
    auto edges = dist::ComputeBinEdges(mc_values, hopts);
    auto boot = bootstrap::BootstrapAccuracyInfo(mc_values, kN,
                                                 kConfidence, *edges);
    auto ana_mean =
        accuracy::MeanInterval(rv.Mean(), rv.StdDev(), kN, kConfidence);
    auto ana_var = accuracy::VarianceInterval(rv.StdDev(), kN, kConfidence);
    if (!boot.ok() || !ana_mean.ok() || !ana_var.ok()) continue;

    const auto counts = dist::CountBins(mc_values, *edges);
    for (size_t b = 0; b < kBins; ++b) {
      const double p = static_cast<double>(counts[b]) /
                       static_cast<double>(mc_values.size());
      auto ana_bin = accuracy::ProportionInterval(p, kN, kConfidence);
      if (ana_bin.ok() && ana_bin->Length() > 0.0) {
        bin_ratio += boot->bin_cis[b].Length() / ana_bin->Length();
        ++bin_count;
      }
    }
    mean_ratio += boot->mean_ci->Length() / ana_mean->Length();
    var_ratio += boot->variance_ci->Length() / ana_var->Length();
    ++done;
  }

  bench::PrintRow({"statistic", "len_ratio(boot/ana)"}, 18);
  bench::PrintRow({"bin_heights",
                   bench::Fmt(bin_ratio / static_cast<double>(bin_count),
                              3)},
                  18);
  bench::PrintRow(
      {"mean", bench::Fmt(mean_ratio / static_cast<double>(done), 3)}, 18);
  bench::PrintRow(
      {"variance", bench::Fmt(var_ratio / static_cast<double>(done), 3)},
      18);
  std::printf(
      "\nExpected shape (paper): the bootstrap advantage shrinks to "
      "~20%% on mean\nand variance when the result really is normal "
      "(compare Figure 5(a)).\n");
  return 0;
}
