// EXPLAIN ANALYZE overhead gate: a pipeline wrapped stage-by-stage in
// ProfiledOperator (pull-count counters, no clock) must cost at most 5%
// throughput over the same pipeline with instrumentation-but-no-profile
// — the profiler's promise is that "run it under EXPLAIN ANALYZE" is
// cheap enough to be the default diagnostic, not a special occasion.
//
// Run with no arguments for the default 1.05x bar; `--max-ratio=<r>`
// moves it, `--out=<path>` moves the JSON results file
// (BENCH_profile.json by default). Exits non-zero when the profiled vs
// unprofiled ratio exceeds the bar, so CI can gate on it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/figure_common.h"
#include "src/engine/executor.h"
#include "src/engine/pipeline_profiler.h"
#include "src/engine/window_aggregate.h"
#include "src/stream/sources.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 150000;
constexpr size_t kPointsPerItem = 20;
constexpr size_t kWindow = 1000;
constexpr int kReps = 5;

/// The Section V-C synthetic stream through a sliding-window AVG — the
/// same pipeline shape bench_obs_overhead drains — with a profiler slot
/// around both stages when `profile` is non-null. No clock is injected:
/// this measures the deterministic counter path EXPLAIN ANALYZE always
/// pays, not the optional latency annex.
engine::OperatorPtr MakePipeline(engine::PipelineProfile* profile) {
  auto source = stream::MakeLearnedGaussianSource(
      "x", kTuples, kPointsPerItem, 10.0, 2.0, /*seed=*/53);
  auto agg = engine::WindowAggregate::Make(
      engine::Profile(std::move(source), "source", profile), "x", "avg_x",
      {.window_size = kWindow});
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  return engine::Profile(std::move(*agg), "window", profile);
}

}  // namespace

int main(int argc, char** argv) {
  double max_ratio = 1.05;
  std::string out_path = "BENCH_profile.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  bench::Banner("EXPLAIN ANALYZE overhead",
                "profiled vs unprofiled throughput");
  bench::JsonResultsWriter results("profile_overhead");

  // Back-to-back paired runs: machine drift hits both sides of each
  // pair, and the smallest per-pair ratio is the honest overhead bound.
  double off_best = 0.0, on_best = 0.0, best_ratio = 1e9;
  for (int rep = 0; rep < kReps; ++rep) {
    auto off_plan = MakePipeline(nullptr);
    const double off = bench::MeasureTuplesPerSecond(*off_plan);

    engine::PipelineProfile profile;
    auto on_plan = MakePipeline(&profile);
    const double on = bench::MeasureTuplesPerSecond(*on_plan);

    // The profiled run must actually have profiled: every input tuple
    // through the source slot, every window result through the window
    // slot, zero wall-clock samples (no clock was injected).
    AUSDB_CHECK(profile.operators().size() == 2);
    const engine::OperatorProfile& src = profile.operators()[0];
    const engine::OperatorProfile& win = profile.operators()[1];
    AUSDB_CHECK(src.name == "source" && src.tuples == kTuples)
        << "source slot recorded " << src.tuples << " tuples";
    AUSDB_CHECK(win.name == "window" &&
                win.tuples == kTuples - kWindow + 1)
        << "window slot recorded " << win.tuples << " tuples";
    AUSDB_CHECK(src.latency_samples == 0 && win.latency_samples == 0)
        << "clock-free profiling must not sample wall time";

    off_best = std::max(off_best, off);
    on_best = std::max(on_best, on);
    best_ratio = std::min(best_ratio, off / on);
  }

  bench::PrintRow({"configuration", "tuples/s", "ratio"}, 20);
  bench::PrintRow({"profile off", bench::FmtInt(off_best), "1.000"}, 20);
  bench::PrintRow({"profile on", bench::FmtInt(on_best),
                   bench::Fmt(best_ratio, 3)}, 20);
  std::printf("profiling overhead: %.2f%% (bar: %.2f%%)\n",
              (best_ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);

  results.AddRow({{"tuples", static_cast<double>(kTuples)},
                  {"profile_off_tps", off_best},
                  {"profile_on_tps", on_best},
                  {"overhead_ratio", best_ratio},
                  {"max_ratio", max_ratio}});
  if (!results.WriteFile(out_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results written to %s\n", out_path.c_str());

  if (best_ratio > max_ratio) {
    std::fprintf(stderr,
                 "FAIL: profiled-on/off ratio %.3f exceeds %.3f\n",
                 best_ratio, max_ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
