// Async ingestion overlap (google-benchmark): a source whose every pull
// stalls on simulated I/O (the CLARO-style high-volume regime where
// ingestion latency, not math, bounds throughput) feeding a partitioned
// window aggregation. Queue depth 0 is the synchronous baseline; depths
// {1, 4, 64} pull the same source through AsyncPrefetchSource, so the
// stall overlaps with window processing. The acceptance bar is >= 1.3x
// items/s over the depth-0 row on the stalled source; the no-stall rows
// bound the wrapper's own overhead. Output is bit-identical across all
// rows by the determinism contract (asserted by the equivalence tests,
// not re-measured here).

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/dist/gaussian.h"
#include "src/engine/accuracy_annotator.h"
#include "src/engine/executor.h"
#include "src/engine/scan.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/stream/async_prefetch_source.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 512;
constexpr size_t kKeys = 16;
constexpr size_t kWindow = 16;

// Bootstrap resamples for the accuracy annotation stage — sized so the
// per-tuple compute is of the same order as the simulated I/O stall,
// the regime where prefetch overlap pays.
constexpr size_t kResamples = 250;

// Source of deterministic keyed Gaussian tuples; every pull blocks for
// `stall_us` microseconds of simulated I/O before returning.
engine::OperatorPtr MakeStalledSource(size_t count, int stall_us) {
  engine::Schema schema;
  AUSDB_CHECK_OK(schema.AddField({"k", engine::FieldType::kString}));
  AUSDB_CHECK_OK(schema.AddField({"x", engine::FieldType::kUncertain}));
  auto produced = std::make_shared<size_t>(0);
  return std::make_unique<engine::StreamScan>(
      std::move(schema),
      [produced, count,
       stall_us]() -> Result<std::optional<engine::Tuple>> {
        if (*produced >= count) {
          return std::optional<engine::Tuple>(std::nullopt);
        }
        if (stall_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
        }
        const size_t i = (*produced)++;
        return std::optional<engine::Tuple>(engine::Tuple(
            {expr::Value("key" + std::to_string(i % kKeys)),
             expr::Value(dist::RandomVar(
                 std::make_shared<dist::GaussianDist>(
                     static_cast<double>(i % 211), 1.0 + (i % 7)),
                 20 + i % 30))}));
      });
}

// The downstream work the prefetch overlaps with: a sharded partitioned
// window aggregation followed by bootstrap accuracy annotation — the
// paper's accuracy-carrying hot path, and genuinely compute-heavy
// (kResamples d.f. resamples per output tuple).
Result<engine::OperatorPtr> MakePipeline(engine::OperatorPtr source) {
  engine::ShardedWindowOptions opts;
  opts.window.window_size = kWindow;
  opts.window.emit_partial = true;
  opts.num_shards = 8;
  opts.batch_size = 32;
  AUSDB_ASSIGN_OR_RETURN(auto agg,
                         engine::ShardedPartitionedWindowAggregate::Make(
                             std::move(source), "k", "x", "avg", opts));
  engine::AccuracyAnnotatorOptions aopts;
  aopts.method = accuracy::AccuracyMethod::kBootstrap;
  aopts.bootstrap_resamples = kResamples;
  return engine::OperatorPtr(std::make_unique<engine::AccuracyAnnotator>(
      std::move(agg), aopts));
}

// range(0): queue depth (0 = synchronous, no wrapper).
// range(1): per-pull stall in microseconds.
void BM_IngestPipeline(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  const int stall_us = static_cast<int>(state.range(1));
  for (auto _ : state) {
    engine::OperatorPtr source = MakeStalledSource(kTuples, stall_us);
    if (depth > 0) {
      stream::AsyncPrefetchOptions opts;
      opts.queue_depth = depth;
      source = stream::MakeAsyncPrefetch(std::move(source), opts);
    }
    auto pipeline = MakePipeline(std::move(source));
    if (!pipeline.ok()) {
      state.SkipWithError("pipeline construction failed");
      return;
    }
    auto n = engine::Drain(**pipeline);
    if (!n.ok() || *n == 0) {
      state.SkipWithError("drain failed");
      return;
    }
    benchmark::DoNotOptimize(*n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTuples));
  state.counters["queue_depth"] =
      benchmark::Counter(static_cast<double>(depth));
  state.counters["stall_us"] =
      benchmark::Counter(static_cast<double>(stall_us));
}
// I/O-stalled source (20us per pull): the overlap win.
BENCHMARK(BM_IngestPipeline)
    ->Args({0, 20})->Args({1, 20})->Args({4, 20})->Args({64, 20})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
// No stall: upper bound on the wrapper's hand-off overhead.
BENCHMARK(BM_IngestPipeline)
    ->Args({0, 0})->Args({64, 0})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Raw source drain without downstream work: overlap cannot help here
// (there is nothing to overlap with), isolating queue hand-off cost on
// a stalled source.
void BM_RawSourceDrain(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    engine::OperatorPtr source = MakeStalledSource(kTuples, 20);
    if (depth > 0) {
      stream::AsyncPrefetchOptions opts;
      opts.queue_depth = depth;
      source = stream::MakeAsyncPrefetch(std::move(source), opts);
    }
    auto n = engine::Drain(*source);
    if (!n.ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    benchmark::DoNotOptimize(*n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTuples));
}
BENCHMARK(BM_RawSourceDrain)
    ->Arg(0)->Arg(64)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
