// Extension (paper Section VII future work): accuracy from weighted
// samples. A sensor's true mean drifts; the window's observations are
// weighted by recency (weight decay^age) and all Lemma 2 machinery runs
// with Kish's effective sample size.
//
// Reported per decay factor: coverage of the CURRENT true mean by the
// 90% weighted mean interval, the interval length, and n_eff. decay = 1
// is the paper's unweighted baseline.

#include <vector>

#include "bench/figure_common.h"
#include "src/accuracy/weighted_accuracy.h"
#include "src/common/rng.h"
#include "src/stats/random_variates.h"
#include "src/stats/weighted.h"

using namespace ausdb;

int main() {
  bench::Banner("Extension",
                "weighted-sample accuracy under drift (Section VII)");

  constexpr size_t kWindow = 60;
  constexpr int kTrials = 3000;
  constexpr double kDrift = 4.0;  // total mean drift across the window
  Rng rng(62);

  bench::PrintRow({"decay", "n_eff", "coverage", "avg_CI_len"}, 13);
  for (double decay : {1.0, 0.95, 0.9, 0.85, 0.8, 0.7}) {
    auto weights = stats::ExponentialDecayWeights(kWindow, decay);
    const double n_eff = *stats::EffectiveSampleSize(*weights);
    size_t hits = 0;
    double total_len = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      // newest_first[i] has age i; true mean falls by kDrift across the
      // window, so the current (age 0) mean is kDrift.
      std::vector<double> newest_first(kWindow);
      for (size_t i = 0; i < kWindow; ++i) {
        const double mean =
            kDrift * (1.0 - static_cast<double>(i) / (kWindow - 1));
        newest_first[i] = stats::SampleNormal(rng, mean, 1.0);
      }
      auto ci =
          accuracy::WeightedMeanInterval(newest_first, *weights, 0.9);
      if (ci->Contains(kDrift)) ++hits;
      total_len += ci->Length();
    }
    bench::PrintRow({bench::Fmt(decay, 2), bench::Fmt(n_eff, 1),
                     bench::Fmt(static_cast<double>(hits) / kTrials, 3),
                     bench::Fmt(total_len / kTrials, 3)},
                    13);
  }
  std::printf(
      "\nReading: the unweighted window (decay=1.00) almost never covers "
      "the\ncurrent mean under drift; recency weighting restores "
      "coverage at the cost\nof wider intervals (smaller effective "
      "sample size) — the trade-off the\npaper's future-work section "
      "anticipates.\n");
  return 0;
}
