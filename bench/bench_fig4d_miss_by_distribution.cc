// Figure 4(d): average miss rate of the 90% intervals at n = 20, per
// synthetic distribution family (exponential, gamma, normal, uniform,
// Weibull), averaged over the three statistics (bin heights, mean,
// variance). Ground truth comes from the families' closed forms.

#include "bench/figure_common.h"
#include "src/accuracy/mean_variance_ci.h"
#include "src/accuracy/proportion_ci.h"
#include "src/common/rng.h"
#include "src/dist/histogram.h"
#include "src/dist/learner.h"
#include "src/workload/synthetic.h"

using namespace ausdb;

int main() {
  bench::Banner("Figure 4(d)",
                "miss rates per distribution family (n=20, 90% CIs)");

  Rng rng(44);
  constexpr size_t kN = 20;
  constexpr int kTrials = 3000;

  bench::PrintRow({"family", "avg_miss", "bins", "mean", "variance"});
  for (workload::Family family : workload::kAllFamilies) {
    size_t bin_checks = 0, bin_misses = 0;
    size_t mean_misses = 0, var_misses = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto sample = workload::SampleFamilyMany(rng, family, kN);
      auto learned = dist::LearnHistogram(sample, {});
      const auto& hist =
          static_cast<const dist::HistogramDist&>(*learned->distribution);
      for (size_t b = 0; b < hist.bin_count(); ++b) {
        auto ci = accuracy::ProportionInterval(hist.BinProb(b), kN, 0.9);
        const double truth =
            workload::FamilyCdf(family, hist.edges()[b + 1]) -
            workload::FamilyCdf(family, hist.edges()[b]);
        ++bin_checks;
        if (!ci->Contains(truth)) ++bin_misses;
      }
      auto mean_ci = accuracy::MeanIntervalFromSample(sample, 0.9);
      if (!mean_ci->Contains(workload::FamilyMean(family))) ++mean_misses;
      auto var_ci = accuracy::VarianceIntervalFromSample(sample, 0.9);
      if (!var_ci->Contains(workload::FamilyVariance(family)))
        ++var_misses;
    }
    const double bins =
        static_cast<double>(bin_misses) / static_cast<double>(bin_checks);
    const double mean =
        static_cast<double>(mean_misses) / static_cast<double>(kTrials);
    const double variance =
        static_cast<double>(var_misses) / static_cast<double>(kTrials);
    bench::PrintRow({std::string(workload::FamilyToString(family)),
                     bench::Fmt((bins + mean + variance) / 3.0, 4),
                     bench::Fmt(bins, 4), bench::Fmt(mean, 4),
                     bench::Fmt(variance, 4)});
  }
  std::printf(
      "\nExpected shape (paper): all families stay at relatively low "
      "miss rates (nominal 10%%); skewed families (exponential, gamma, "
      "weibull) run higher on the variance statistic.\n");
  return 0;
}
