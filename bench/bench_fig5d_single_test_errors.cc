// Figure 5(d): errors of a SINGLE mdTest significance predicate vs
// sample size, on the simulated road-delay data (paper Section V-D).
//
// 100 route pairs with intentionally close true mean delays; 200
// comparisons per sample size: 100 with H0 true (testing "E(X) > E(Y)"
// when actually E(X) <= E(Y)) counting false positives, and 100 with H1
// true counting false negatives. For contrast, "errors without
// significance predicates" counts plain sample-mean comparisons that get
// the direction wrong, across all 200.

#include <vector>

#include "bench/figure_common.h"
#include "src/dist/learner.h"
#include "src/hypothesis/significance_predicates.h"
#include "src/stats/descriptive.h"
#include "src/workload/cartel.h"

using namespace ausdb;

namespace {

constexpr double kAlpha = 0.05;

dist::RandomVar LearnRoute(const workload::CartelSimulator& sim,
                           const std::vector<size_t>& route, size_t n,
                           Rng& rng) {
  auto obs = sim.RouteDelayObservations(route, n, rng);
  auto learned = dist::LearnGaussian(*obs);
  return dist::RandomVar(*learned);
}

}  // namespace

int main() {
  bench::Banner("Figure 5(d)",
                "single-test mdTest errors vs sample size (alpha=0.05)");

  workload::CartelOptions opts;
  opts.num_segments = 200;
  opts.observations_per_segment = 800;
  opts.route_length = 20;
  workload::CartelSimulator sim(opts);
  Rng rng(54);

  // Close-but-decidable pairs: the differing segments are ~90 ranks
  // apart in the true-mean ordering, i.e. the routes' mean total delays
  // differ by a few percent — small enough that small samples cannot
  // tell them apart, large enough that n ~ 80 can.
  std::vector<workload::CartelSimulator::RoutePair> pairs;
  for (int i = 0; i < 100; ++i) {
    pairs.push_back(sim.MakeRoutePairWithRankGap(rng, 90));
  }

  bench::PrintRow({"n", "false_pos", "false_neg", "errors_no_sig"}, 15);
  for (size_t n : {10, 20, 30, 40, 60, 80}) {
    size_t fp = 0, fn = 0, plain_errors = 0;
    for (const auto& pair : pairs) {
      // H0 true: X = lesser route, predicate E(X) > E(Y).
      {
        const auto x = LearnRoute(sim, pair.lesser, n, rng);
        const auto y = LearnRoute(sim, pair.greater, n, rng);
        auto accepted = hypothesis::MdTest(
            x, y, hypothesis::TestOp::kGreater, 0.0, kAlpha);
        if (accepted.ok() && *accepted) ++fp;
        // Plain comparison (previous work): E(X) > E(Y) on the learned
        // means; claiming X is greater is an error here.
        if (x.Mean() > y.Mean()) ++plain_errors;
      }
      // H1 true: X = greater route.
      {
        const auto x = LearnRoute(sim, pair.greater, n, rng);
        const auto y = LearnRoute(sim, pair.lesser, n, rng);
        auto accepted = hypothesis::MdTest(
            x, y, hypothesis::TestOp::kGreater, 0.0, kAlpha);
        if (accepted.ok() && !*accepted) ++fn;
        if (!(x.Mean() > y.Mean())) ++plain_errors;
      }
    }
    bench::PrintRow({std::to_string(n), std::to_string(fp),
                     std::to_string(fn), std::to_string(plain_errors)},
                    15);
  }
  std::printf(
      "\nCounts are out of 100 (fp, fn) and 200 (plain). Expected shape "
      "(paper):\nfalse positives stay below alpha*100 = 5; false "
      "negatives start high and\nfall with n (a single test does not "
      "control them); plain comparisons err\nfar more than the "
      "significance predicate overall.\n");
  return 0;
}
