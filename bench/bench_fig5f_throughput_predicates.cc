// Figure 5(f): maximum stream throughput with significance predicates.
// The same sliding-window AVG stream as Figure 5(c), followed by
//  (1) no predicate,
//  (2) mTest  (is the window mean greater than a constant?),
//  (3) mdTest (is the mean greater than the previous window's?), and
//  (4) pTest  (is Pr[avg > c] above 0.8?),
// all with coupled tests. Significance predicates are plain hypothesis
// testing on the distributions, so their overhead is tiny.

#include <memory>
#include <optional>

#include "bench/figure_common.h"
#include "src/common/logging.h"
#include "src/engine/executor.h"
#include "src/engine/window_aggregate.h"
#include "src/hypothesis/coupled_tests.h"
#include "src/stream/sources.h"
#include "src/stream/throughput.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 200000;
constexpr size_t kWindow = 1000;
constexpr double kMu = 10.0;

engine::OperatorPtr MakeWindowedStream(uint64_t seed) {
  auto source = stream::MakeLearnedGaussianSource("x", kTuples, 20, kMu,
                                                  2.0, seed);
  auto agg = engine::WindowAggregate::Make(std::move(source), "x", "avg_x",
                                           {.window_size = kWindow});
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  return std::move(*agg);
}

enum class Mode { kNone, kMTest, kMdTest, kPTest };

double Measure(Mode mode) {
  auto plan = MakeWindowedStream(56);
  stream::ThroughputMeter meter;
  meter.Start();
  std::optional<hypothesis::SampleStatistics> previous;
  size_t count = 0;
  for (;;) {
    auto t = plan->Next();
    AUSDB_CHECK(t.ok()) << t.status().ToString();
    if (!t->has_value()) break;
    ++count;
    const dist::RandomVar rv = *(*t)->value(0).random_var();
    hypothesis::SampleStatistics s{rv.Mean(), rv.StdDev(),
                                   rv.sample_size()};
    switch (mode) {
      case Mode::kNone:
        break;
      case Mode::kMTest: {
        auto outcome = hypothesis::CoupledTests(
            [&s](hypothesis::TestOp op, double alpha) {
              return hypothesis::MeanTest(s, op, kMu - 0.5, alpha);
            },
            hypothesis::TestOp::kGreater, 0.05, 0.05);
        AUSDB_CHECK(outcome.ok());
        break;
      }
      case Mode::kMdTest: {
        if (previous.has_value()) {
          auto outcome = hypothesis::CoupledTests(
              [&s, &previous](hypothesis::TestOp op, double alpha) {
                return hypothesis::MeanDifferenceTest(s, *previous, op,
                                                      0.0, alpha);
              },
              hypothesis::TestOp::kGreater, 0.05, 0.05);
          AUSDB_CHECK(outcome.ok());
        }
        break;
      }
      case Mode::kPTest: {
        const double p_hat = rv.ProbGreater(kMu - 0.1);
        const size_t n = rv.sample_size();
        auto outcome = hypothesis::CoupledTests(
            [p_hat, n](hypothesis::TestOp op, double alpha) {
              return hypothesis::ProportionTest(p_hat, n, op, 0.8, alpha);
            },
            hypothesis::TestOp::kGreater, 0.05, 0.05);
        AUSDB_CHECK(outcome.ok());
        break;
      }
    }
    previous = s;
  }
  meter.Count(count);
  meter.Stop();
  return meter.TuplesPerSecond();
}

}  // namespace

int main() {
  bench::Banner("Figure 5(f)",
                "throughput impact of significance predicates");

  const double none = Measure(Mode::kNone);
  const double mtest = Measure(Mode::kMTest);
  const double mdtest = Measure(Mode::kMdTest);
  const double ptest = Measure(Mode::kPTest);

  bench::PrintRow({"pipeline", "tuples_per_sec", "relative"}, 18);
  bench::PrintRow({"no_pred", bench::FmtInt(none), "1.000"}, 18);
  bench::PrintRow(
      {"mTest", bench::FmtInt(mtest), bench::Fmt(mtest / none, 3)}, 18);
  bench::PrintRow(
      {"mdTest", bench::FmtInt(mdtest), bench::Fmt(mdtest / none, 3)},
      18);
  bench::PrintRow(
      {"pTest", bench::FmtInt(ptest), bench::Fmt(ptest / none, 3)}, 18);
  std::printf(
      "\nExpected shape (paper): all four bars nearly equal — "
      "significance\npredicates cost even less than computing accuracy "
      "information.\n");
  return 0;
}
