// Metrics-overhead smoke test: the observability layer's acceptance bar
// is that full instrumentation (InstrumentedOperator wrappers around
// every stage plus prefetch-queue gauges) costs at most 5% throughput,
// and that a disabled registry costs nothing at all (the wrapper is not
// even constructed — Instrument(nullptr) returns the child unchanged).
//
// Run with no arguments for the default 1.05x bar, or pass
// `--max-ratio=<r>` to move it. Exits non-zero when the instrumented-on
// vs instrumented-off ratio exceeds the bar, so CI can gate on it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "bench/figure_common.h"
#include "src/engine/executor.h"
#include "src/engine/instrumented_operator.h"
#include "src/engine/window_aggregate.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/stream/async_prefetch_source.h"
#include "src/stream/sources.h"

using namespace ausdb;

namespace {

constexpr size_t kTuples = 150000;
constexpr size_t kPointsPerItem = 20;
constexpr size_t kWindow = 1000;
constexpr int kReps = 5;

/// The Section V-C synthetic stream through a sliding-window AVG, with
/// an instrumentation wrapper around both the source and the window
/// when `registry` is non-null. This is the same pipeline shape the
/// figure benches drain, so the ratio reflects a realistic data path.
engine::OperatorPtr MakePipeline(obs::MetricRegistry* registry) {
  auto source = stream::MakeLearnedGaussianSource(
      "x", kTuples, kPointsPerItem, 10.0, 2.0, /*seed=*/53);
  auto agg = engine::WindowAggregate::Make(
      engine::Instrument(std::move(source), "source", registry), "x",
      "avg_x", {.window_size = kWindow});
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  return engine::Instrument(std::move(*agg), "window", registry);
}

}  // namespace

int main(int argc, char** argv) {
  double max_ratio = 1.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-ratio=", 12) == 0) {
      max_ratio = std::atof(argv[i] + 12);
    }
  }

  bench::Banner("Observability overhead",
                "instrumented vs uninstrumented throughput");

  // Back-to-back paired runs: machine drift hits both sides of each
  // pair, and the smallest per-pair ratio is the honest overhead bound.
  double off_best = 0.0, on_best = 0.0, best_ratio = 1e9;
  for (int rep = 0; rep < kReps; ++rep) {
    auto off_plan = MakePipeline(nullptr);
    const double off = bench::MeasureTuplesPerSecond(*off_plan);

    obs::MetricRegistry registry;
    auto on_plan = MakePipeline(&registry);
    const double on = bench::MeasureTuplesPerSecond(*on_plan);

    // The instrumented run must actually have instrumented: every input
    // tuple through the source wrapper, every window result through the
    // window wrapper.
    uint64_t source_tuples = 0;
    for (const auto& c : registry.Snapshot().counters) {
      if (c.key.name != "ausdb_engine_tuples_total") continue;
      for (const auto& l : c.key.labels) {
        if (l.value == "source") source_tuples = c.value;
      }
    }
    AUSDB_CHECK(source_tuples == kTuples)
        << "instrumented run recorded " << source_tuples << " tuples";

    off_best = std::max(off_best, off);
    on_best = std::max(on_best, on);
    best_ratio = std::min(best_ratio, off / on);
  }

  bench::PrintRow({"configuration", "tuples/s", "ratio"}, 20);
  bench::PrintRow({"metrics off", bench::FmtInt(off_best), "1.000"}, 20);
  bench::PrintRow({"metrics on", bench::FmtInt(on_best),
                   bench::Fmt(best_ratio, 3)}, 20);
  std::printf("instrumentation overhead: %.2f%% (bar: %.2f%%)\n",
              (best_ratio - 1.0) * 100.0, (max_ratio - 1.0) * 100.0);

  if (best_ratio > max_ratio) {
    std::fprintf(stderr,
                 "FAIL: instrumented-on/off ratio %.3f exceeds %.3f\n",
                 best_ratio, max_ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
