// Crash-recovery cost: (a) durable checkpoint latency (manifest encode
// + temp write + fsync + rename + directory fsync) and restore latency
// as the checkpointed state grows with window size and shard count, and
// (b) steady-state throughput overhead of periodic checkpointing at
// several intervals.
//
// The acceptance bar for (b) is <= 5% overhead at a 10k-tuple
// checkpoint interval: durability must be affordable at the cadence a
// production stream would actually use. The pairing discipline mirrors
// bench_fault_recovery: baseline and checkpointed runs execute
// back-to-back inside each rep so machine drift hits both sides, and
// the smallest ratio across reps is reported.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/figure_common.h"
#include "src/common/logging.h"
#include "src/engine/executor.h"
#include "src/engine/recovery_manager.h"
#include "src/engine/sharded_partitioned_window.h"
#include "src/stream/replayable_source.h"

using namespace ausdb;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

fs::path ScratchDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("ausdb_bench_recovery_" + std::to_string(getpid())) / tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Pipeline {
  engine::OperatorPtr root;
  stream::ReplayableKeyedGaussianSource* source = nullptr;
  engine::Operator* agg = nullptr;
};

Pipeline MakePipeline(size_t count, size_t window, size_t shards) {
  stream::KeyedGaussianSourceOptions sopts;
  sopts.count = count;
  sopts.points_per_item = 3;
  auto src = stream::ReplayableKeyedGaussianSource::Make(sopts);
  AUSDB_CHECK(src.ok()) << src.status().ToString();
  Pipeline p;
  p.source = src->get();
  engine::ShardedWindowOptions opts;
  opts.window.window_size = window;
  opts.num_shards = shards;
  auto agg = engine::ShardedPartitionedWindowAggregate::Make(
      std::move(*src), "key", "value", "avg", opts);
  AUSDB_CHECK(agg.ok()) << agg.status().ToString();
  p.agg = agg->get();
  p.root = std::move(*agg);
  return p;
}

engine::RecoveryManager Register(const fs::path& dir, Pipeline& p) {
  engine::RecoveryManager mgr(dir.string());
  AUSDB_CHECK_OK(mgr.RegisterSource("source", p.source));
  AUSDB_CHECK_OK(mgr.RegisterOperator("agg", p.agg));
  return mgr;
}

// -------------------------------------------------------------------
// (a) checkpoint + restore latency vs state size.

void LatencyRow(size_t window, size_t shards) {
  // Enough input that every partition's window is full at snapshot
  // time: the checkpoint carries its steady-state maximum.
  const size_t count = 4 * window + 4096;
  const fs::path dir =
      ScratchDir("lat_w" + std::to_string(window) + "_s" +
                 std::to_string(shards));

  Pipeline p = MakePipeline(count, window, shards);
  engine::RecoveryManager mgr = Register(dir, p);
  auto drained = engine::Drain(*p.root);
  AUSDB_CHECK(drained.ok()) << drained.status().ToString();

  double best_write = 1e9;
  uint64_t bytes = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = Clock::now();
    auto gen = mgr.Checkpoint(*drained);
    const double secs = SecondsSince(start);
    AUSDB_CHECK(gen.ok()) << gen.status().ToString();
    best_write = std::min(best_write, secs);
    auto stored = mgr.storage().ReadGeneration(*gen);
    AUSDB_CHECK(stored.ok()) << stored.status().ToString();
    bytes = stored->size();
  }

  double best_restore = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    Pipeline fresh = MakePipeline(count, window, shards);
    engine::RecoveryManager rmgr = Register(dir, fresh);
    const auto start = Clock::now();
    auto recovered = rmgr.Restore();
    const double secs = SecondsSince(start);
    AUSDB_CHECK(recovered.ok()) << recovered.status().ToString();
    AUSDB_CHECK(recovered->has_value());
    best_restore = std::min(best_restore, secs);
  }

  bench::PrintRow({std::to_string(window), std::to_string(shards),
                   bench::FmtInt(double(bytes) / 1024.0),
                   bench::Fmt(best_write * 1e3, 3),
                   bench::Fmt(best_restore * 1e3, 3)},
                  12);
}

// -------------------------------------------------------------------
// (b) steady-state overhead of periodic checkpointing.

double MeasureRate(Pipeline& p, engine::RecoveryManager* mgr,
                   uint64_t every) {
  const auto start = Clock::now();
  uint64_t delivered = 0;
  for (;;) {
    auto t = p.root->Next();
    AUSDB_CHECK(t.ok()) << t.status().ToString();
    if (!t->has_value()) break;
    ++delivered;
    if (mgr != nullptr && delivered % every == 0) {
      auto gen = mgr->Checkpoint(delivered);
      AUSDB_CHECK(gen.ok()) << gen.status().ToString();
    }
  }
  return double(delivered) / SecondsSince(start);
}

void OverheadTable() {
  constexpr size_t kCount = 120000;
  constexpr size_t kWindow = 1024;
  constexpr size_t kShards = 4;
  const std::vector<uint64_t> intervals = {1000, 10000, 100000};

  double base_best = 0.0;
  std::vector<double> ckpt_best(intervals.size(), 0.0);
  std::vector<double> min_ratio(intervals.size(), 1e9);
  std::vector<uint64_t> snapshots(intervals.size(), 0);

  for (int rep = 0; rep < 3; ++rep) {
    Pipeline bare = MakePipeline(kCount, kWindow, kShards);
    const double base = MeasureRate(bare, nullptr, 0);
    base_best = std::max(base_best, base);

    for (size_t i = 0; i < intervals.size(); ++i) {
      const fs::path dir =
          ScratchDir("ovh_" + std::to_string(intervals[i]));
      Pipeline p = MakePipeline(kCount, kWindow, kShards);
      engine::RecoveryManager mgr = Register(dir, p);
      const double rate = MeasureRate(p, &mgr, intervals[i]);
      ckpt_best[i] = std::max(ckpt_best[i], rate);
      min_ratio[i] = std::min(min_ratio[i], base / rate);
      snapshots[i] = mgr.storage().ListGenerations().empty()
                         ? 0
                         : mgr.storage().ListGenerations().back();
    }
  }

  bench::PrintRow({"interval", "outputs/s", "vs bare", "snapshots"}, 14);
  bench::PrintRow({"none", bench::FmtInt(base_best), "1.000", "0"}, 14);
  for (size_t i = 0; i < intervals.size(); ++i) {
    bench::PrintRow({std::to_string(intervals[i]),
                     bench::FmtInt(ckpt_best[i]),
                     bench::Fmt(min_ratio[i], 3),
                     std::to_string(snapshots[i])},
                    14);
  }
  const double at_10k = min_ratio[1];
  std::printf("checkpoint overhead at 10k interval: %.2f%% (bar: 5%%)\n",
              (at_10k - 1.0) * 100.0);
}

}  // namespace

int main() {
  bench::Banner("Recovery",
                "durable checkpoint latency and steady-state overhead");

  std::printf("\ncheckpoint write (encode+fsync+rename) and restore "
              "latency, best of 5:\n");
  bench::PrintRow({"window", "shards", "KiB", "write ms", "restore ms"},
                  12);
  for (size_t window : {128, 1024, 8192}) LatencyRow(window, 4);
  for (size_t shards : {1, 8}) LatencyRow(1024, shards);

  std::printf("\nsteady-state overhead of periodic checkpoints "
              "(window %d, paired runs):\n", 1024);
  OverheadTable();

  fs::remove_all(fs::temp_directory_path() /
                 ("ausdb_bench_recovery_" + std::to_string(getpid())));
  return 0;
}
