
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accuracy_test.cc" "tests/CMakeFiles/ausdb_tests.dir/accuracy_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/accuracy_test.cc.o.d"
  "/root/repo/tests/bootstrap_test.cc" "tests/CMakeFiles/ausdb_tests.dir/bootstrap_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/bootstrap_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/ausdb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/conditioning_test.cc" "tests/CMakeFiles/ausdb_tests.dir/conditioning_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/conditioning_test.cc.o.d"
  "/root/repo/tests/convolution_test.cc" "tests/CMakeFiles/ausdb_tests.dir/convolution_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/convolution_test.cc.o.d"
  "/root/repo/tests/descriptive_test.cc" "tests/CMakeFiles/ausdb_tests.dir/descriptive_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/descriptive_test.cc.o.d"
  "/root/repo/tests/distribution_test.cc" "tests/CMakeFiles/ausdb_tests.dir/distribution_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/distribution_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/ausdb_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/expr_test.cc" "tests/CMakeFiles/ausdb_tests.dir/expr_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/expr_test.cc.o.d"
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/ausdb_tests.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/failure_injection_test.cc.o.d"
  "/root/repo/tests/gmm_test.cc" "tests/CMakeFiles/ausdb_tests.dir/gmm_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/gmm_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/ausdb_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/hypothesis_test.cc" "tests/CMakeFiles/ausdb_tests.dir/hypothesis_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/hypothesis_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/ausdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/ausdb_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/kde_power_test.cc" "tests/CMakeFiles/ausdb_tests.dir/kde_power_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/kde_power_test.cc.o.d"
  "/root/repo/tests/ks_test_test.cc" "tests/CMakeFiles/ausdb_tests.dir/ks_test_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/ks_test_test.cc.o.d"
  "/root/repo/tests/partitioned_window_test.cc" "tests/CMakeFiles/ausdb_tests.dir/partitioned_window_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/partitioned_window_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ausdb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/quantiles_test.cc" "tests/CMakeFiles/ausdb_tests.dir/quantiles_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/quantiles_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/ausdb_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/random_variates_test.cc" "tests/CMakeFiles/ausdb_tests.dir/random_variates_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/random_variates_test.cc.o.d"
  "/root/repo/tests/serde_test.cc" "tests/CMakeFiles/ausdb_tests.dir/serde_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/serde_test.cc.o.d"
  "/root/repo/tests/soak_test.cc" "tests/CMakeFiles/ausdb_tests.dir/soak_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/soak_test.cc.o.d"
  "/root/repo/tests/sort_limit_test.cc" "tests/CMakeFiles/ausdb_tests.dir/sort_limit_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/sort_limit_test.cc.o.d"
  "/root/repo/tests/special_functions_test.cc" "tests/CMakeFiles/ausdb_tests.dir/special_functions_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/special_functions_test.cc.o.d"
  "/root/repo/tests/union_timewindow_test.cc" "tests/CMakeFiles/ausdb_tests.dir/union_timewindow_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/union_timewindow_test.cc.o.d"
  "/root/repo/tests/weighted_test.cc" "tests/CMakeFiles/ausdb_tests.dir/weighted_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/weighted_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/ausdb_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/ausdb_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ausdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
