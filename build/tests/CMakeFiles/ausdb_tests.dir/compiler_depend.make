# Empty compiler generated dependencies file for ausdb_tests.
# This may be replaced when dependencies are built.
