file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5e_coupled_tests.dir/bench_fig5e_coupled_tests.cc.o"
  "CMakeFiles/bench_fig5e_coupled_tests.dir/bench_fig5e_coupled_tests.cc.o.d"
  "bench_fig5e_coupled_tests"
  "bench_fig5e_coupled_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5e_coupled_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
