# Empty dependencies file for bench_fig5e_coupled_tests.
# This may be replaced when dependencies are built.
