# Empty dependencies file for bench_fig5c_throughput_accuracy.
# This may be replaced when dependencies are built.
