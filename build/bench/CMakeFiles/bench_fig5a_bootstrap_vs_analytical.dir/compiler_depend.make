# Empty compiler generated dependencies file for bench_fig5a_bootstrap_vs_analytical.
# This may be replaced when dependencies are built.
