file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_bootstrap_vs_analytical.dir/bench_fig5a_bootstrap_vs_analytical.cc.o"
  "CMakeFiles/bench_fig5a_bootstrap_vs_analytical.dir/bench_fig5a_bootstrap_vs_analytical.cc.o.d"
  "bench_fig5a_bootstrap_vs_analytical"
  "bench_fig5a_bootstrap_vs_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_bootstrap_vs_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
