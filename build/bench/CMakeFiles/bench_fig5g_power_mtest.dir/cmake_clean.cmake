file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5g_power_mtest.dir/bench_fig5g_power_mtest.cc.o"
  "CMakeFiles/bench_fig5g_power_mtest.dir/bench_fig5g_power_mtest.cc.o.d"
  "bench_fig5g_power_mtest"
  "bench_fig5g_power_mtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5g_power_mtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
