# Empty dependencies file for bench_fig5g_power_mtest.
# This may be replaced when dependencies are built.
