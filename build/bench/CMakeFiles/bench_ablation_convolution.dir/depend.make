# Empty dependencies file for bench_ablation_convolution.
# This may be replaced when dependencies are built.
