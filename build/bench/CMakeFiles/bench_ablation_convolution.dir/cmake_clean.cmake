file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_convolution.dir/bench_ablation_convolution.cc.o"
  "CMakeFiles/bench_ablation_convolution.dir/bench_ablation_convolution.cc.o.d"
  "bench_ablation_convolution"
  "bench_ablation_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
