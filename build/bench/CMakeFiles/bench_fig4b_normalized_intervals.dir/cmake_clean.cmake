file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_normalized_intervals.dir/bench_fig4b_normalized_intervals.cc.o"
  "CMakeFiles/bench_fig4b_normalized_intervals.dir/bench_fig4b_normalized_intervals.cc.o.d"
  "bench_fig4b_normalized_intervals"
  "bench_fig4b_normalized_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_normalized_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
