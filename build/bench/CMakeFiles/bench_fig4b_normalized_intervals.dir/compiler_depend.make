# Empty compiler generated dependencies file for bench_fig4b_normalized_intervals.
# This may be replaced when dependencies are built.
