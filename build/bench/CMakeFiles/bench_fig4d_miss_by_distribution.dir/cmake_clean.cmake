file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4d_miss_by_distribution.dir/bench_fig4d_miss_by_distribution.cc.o"
  "CMakeFiles/bench_fig4d_miss_by_distribution.dir/bench_fig4d_miss_by_distribution.cc.o.d"
  "bench_fig4d_miss_by_distribution"
  "bench_fig4d_miss_by_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d_miss_by_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
