# Empty compiler generated dependencies file for bench_fig4d_miss_by_distribution.
# This may be replaced when dependencies are built.
