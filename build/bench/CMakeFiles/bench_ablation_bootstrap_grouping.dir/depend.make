# Empty dependencies file for bench_ablation_bootstrap_grouping.
# This may be replaced when dependencies are built.
