file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bootstrap_grouping.dir/bench_ablation_bootstrap_grouping.cc.o"
  "CMakeFiles/bench_ablation_bootstrap_grouping.dir/bench_ablation_bootstrap_grouping.cc.o.d"
  "bench_ablation_bootstrap_grouping"
  "bench_ablation_bootstrap_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bootstrap_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
