# Empty dependencies file for bench_fig5d_single_test_errors.
# This may be replaced when dependencies are built.
