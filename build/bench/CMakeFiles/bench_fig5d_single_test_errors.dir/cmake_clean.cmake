file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5d_single_test_errors.dir/bench_fig5d_single_test_errors.cc.o"
  "CMakeFiles/bench_fig5d_single_test_errors.dir/bench_fig5d_single_test_errors.cc.o.d"
  "bench_fig5d_single_test_errors"
  "bench_fig5d_single_test_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5d_single_test_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
