# Empty compiler generated dependencies file for bench_fig5f_throughput_predicates.
# This may be replaced when dependencies are built.
