file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5f_throughput_predicates.dir/bench_fig5f_throughput_predicates.cc.o"
  "CMakeFiles/bench_fig5f_throughput_predicates.dir/bench_fig5f_throughput_predicates.cc.o.d"
  "bench_fig5f_throughput_predicates"
  "bench_fig5f_throughput_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5f_throughput_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
