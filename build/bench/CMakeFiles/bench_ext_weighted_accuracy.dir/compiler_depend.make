# Empty compiler generated dependencies file for bench_ext_weighted_accuracy.
# This may be replaced when dependencies are built.
