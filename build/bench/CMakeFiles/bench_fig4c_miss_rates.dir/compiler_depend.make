# Empty compiler generated dependencies file for bench_fig4c_miss_rates.
# This may be replaced when dependencies are built.
