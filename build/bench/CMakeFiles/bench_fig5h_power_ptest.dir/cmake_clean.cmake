file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5h_power_ptest.dir/bench_fig5h_power_ptest.cc.o"
  "CMakeFiles/bench_fig5h_power_ptest.dir/bench_fig5h_power_ptest.cc.o.d"
  "bench_fig5h_power_ptest"
  "bench_fig5h_power_ptest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5h_power_ptest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
