# Empty dependencies file for bench_fig5h_power_ptest.
# This may be replaced when dependencies are built.
