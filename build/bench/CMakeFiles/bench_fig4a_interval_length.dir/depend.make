# Empty dependencies file for bench_fig4a_interval_length.
# This may be replaced when dependencies are built.
