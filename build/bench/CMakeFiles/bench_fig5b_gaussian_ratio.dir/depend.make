# Empty dependencies file for bench_fig5b_gaussian_ratio.
# This may be replaced when dependencies are built.
