file(REMOVE_RECURSE
  "libausdb.a"
)
