# Empty compiler generated dependencies file for ausdb.
# This may be replaced when dependencies are built.
