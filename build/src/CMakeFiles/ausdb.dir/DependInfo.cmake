
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accuracy/accuracy_info.cc" "src/CMakeFiles/ausdb.dir/accuracy/accuracy_info.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/accuracy/accuracy_info.cc.o.d"
  "/root/repo/src/accuracy/confidence_interval.cc" "src/CMakeFiles/ausdb.dir/accuracy/confidence_interval.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/accuracy/confidence_interval.cc.o.d"
  "/root/repo/src/accuracy/defacto.cc" "src/CMakeFiles/ausdb.dir/accuracy/defacto.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/accuracy/defacto.cc.o.d"
  "/root/repo/src/accuracy/mean_variance_ci.cc" "src/CMakeFiles/ausdb.dir/accuracy/mean_variance_ci.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/accuracy/mean_variance_ci.cc.o.d"
  "/root/repo/src/accuracy/proportion_ci.cc" "src/CMakeFiles/ausdb.dir/accuracy/proportion_ci.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/accuracy/proportion_ci.cc.o.d"
  "/root/repo/src/accuracy/weighted_accuracy.cc" "src/CMakeFiles/ausdb.dir/accuracy/weighted_accuracy.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/accuracy/weighted_accuracy.cc.o.d"
  "/root/repo/src/bootstrap/bootstrap_accuracy.cc" "src/CMakeFiles/ausdb.dir/bootstrap/bootstrap_accuracy.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/bootstrap/bootstrap_accuracy.cc.o.d"
  "/root/repo/src/bootstrap/resampler.cc" "src/CMakeFiles/ausdb.dir/bootstrap/resampler.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/bootstrap/resampler.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/CMakeFiles/ausdb.dir/common/math_util.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/common/math_util.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ausdb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ausdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/common/status.cc.o.d"
  "/root/repo/src/dist/conditioning.cc" "src/CMakeFiles/ausdb.dir/dist/conditioning.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/conditioning.cc.o.d"
  "/root/repo/src/dist/convolution.cc" "src/CMakeFiles/ausdb.dir/dist/convolution.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/convolution.cc.o.d"
  "/root/repo/src/dist/discrete.cc" "src/CMakeFiles/ausdb.dir/dist/discrete.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/discrete.cc.o.d"
  "/root/repo/src/dist/distribution.cc" "src/CMakeFiles/ausdb.dir/dist/distribution.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/distribution.cc.o.d"
  "/root/repo/src/dist/empirical.cc" "src/CMakeFiles/ausdb.dir/dist/empirical.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/empirical.cc.o.d"
  "/root/repo/src/dist/gaussian.cc" "src/CMakeFiles/ausdb.dir/dist/gaussian.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/gaussian.cc.o.d"
  "/root/repo/src/dist/gmm_learner.cc" "src/CMakeFiles/ausdb.dir/dist/gmm_learner.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/gmm_learner.cc.o.d"
  "/root/repo/src/dist/histogram.cc" "src/CMakeFiles/ausdb.dir/dist/histogram.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/histogram.cc.o.d"
  "/root/repo/src/dist/kde_learner.cc" "src/CMakeFiles/ausdb.dir/dist/kde_learner.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/kde_learner.cc.o.d"
  "/root/repo/src/dist/learner.cc" "src/CMakeFiles/ausdb.dir/dist/learner.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/learner.cc.o.d"
  "/root/repo/src/dist/mixture.cc" "src/CMakeFiles/ausdb.dir/dist/mixture.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/mixture.cc.o.d"
  "/root/repo/src/dist/random_var.cc" "src/CMakeFiles/ausdb.dir/dist/random_var.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/random_var.cc.o.d"
  "/root/repo/src/dist/weighted_learner.cc" "src/CMakeFiles/ausdb.dir/dist/weighted_learner.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/dist/weighted_learner.cc.o.d"
  "/root/repo/src/engine/accuracy_annotator.cc" "src/CMakeFiles/ausdb.dir/engine/accuracy_annotator.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/accuracy_annotator.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/ausdb.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/filter.cc" "src/CMakeFiles/ausdb.dir/engine/filter.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/filter.cc.o.d"
  "/root/repo/src/engine/partitioned_window.cc" "src/CMakeFiles/ausdb.dir/engine/partitioned_window.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/partitioned_window.cc.o.d"
  "/root/repo/src/engine/project.cc" "src/CMakeFiles/ausdb.dir/engine/project.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/project.cc.o.d"
  "/root/repo/src/engine/scan.cc" "src/CMakeFiles/ausdb.dir/engine/scan.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/scan.cc.o.d"
  "/root/repo/src/engine/schema.cc" "src/CMakeFiles/ausdb.dir/engine/schema.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/schema.cc.o.d"
  "/root/repo/src/engine/sort.cc" "src/CMakeFiles/ausdb.dir/engine/sort.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/sort.cc.o.d"
  "/root/repo/src/engine/time_window_aggregate.cc" "src/CMakeFiles/ausdb.dir/engine/time_window_aggregate.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/time_window_aggregate.cc.o.d"
  "/root/repo/src/engine/tuple.cc" "src/CMakeFiles/ausdb.dir/engine/tuple.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/tuple.cc.o.d"
  "/root/repo/src/engine/union_all.cc" "src/CMakeFiles/ausdb.dir/engine/union_all.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/union_all.cc.o.d"
  "/root/repo/src/engine/window_aggregate.cc" "src/CMakeFiles/ausdb.dir/engine/window_aggregate.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/engine/window_aggregate.cc.o.d"
  "/root/repo/src/expr/analyzer.cc" "src/CMakeFiles/ausdb.dir/expr/analyzer.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/expr/analyzer.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/ausdb.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/ausdb.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/value.cc" "src/CMakeFiles/ausdb.dir/expr/value.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/expr/value.cc.o.d"
  "/root/repo/src/hypothesis/coupled_tests.cc" "src/CMakeFiles/ausdb.dir/hypothesis/coupled_tests.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/hypothesis/coupled_tests.cc.o.d"
  "/root/repo/src/hypothesis/mean_tests.cc" "src/CMakeFiles/ausdb.dir/hypothesis/mean_tests.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/hypothesis/mean_tests.cc.o.d"
  "/root/repo/src/hypothesis/power.cc" "src/CMakeFiles/ausdb.dir/hypothesis/power.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/hypothesis/power.cc.o.d"
  "/root/repo/src/hypothesis/proportion_test.cc" "src/CMakeFiles/ausdb.dir/hypothesis/proportion_test.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/hypothesis/proportion_test.cc.o.d"
  "/root/repo/src/hypothesis/significance_predicates.cc" "src/CMakeFiles/ausdb.dir/hypothesis/significance_predicates.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/hypothesis/significance_predicates.cc.o.d"
  "/root/repo/src/hypothesis/test_types.cc" "src/CMakeFiles/ausdb.dir/hypothesis/test_types.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/hypothesis/test_types.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/ausdb.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/io/csv.cc.o.d"
  "/root/repo/src/io/observation_loader.cc" "src/CMakeFiles/ausdb.dir/io/observation_loader.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/io/observation_loader.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/ausdb.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/query/parser.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/CMakeFiles/ausdb.dir/query/plan.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/query/plan.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/ausdb.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/query/planner.cc.o.d"
  "/root/repo/src/query/token.cc" "src/CMakeFiles/ausdb.dir/query/token.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/query/token.cc.o.d"
  "/root/repo/src/serde/json_writer.cc" "src/CMakeFiles/ausdb.dir/serde/json_writer.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/serde/json_writer.cc.o.d"
  "/root/repo/src/serde/table_printer.cc" "src/CMakeFiles/ausdb.dir/serde/table_printer.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/serde/table_printer.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/ausdb.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/ks_test.cc" "src/CMakeFiles/ausdb.dir/stats/ks_test.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/ks_test.cc.o.d"
  "/root/repo/src/stats/percentile.cc" "src/CMakeFiles/ausdb.dir/stats/percentile.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/percentile.cc.o.d"
  "/root/repo/src/stats/quantiles.cc" "src/CMakeFiles/ausdb.dir/stats/quantiles.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/quantiles.cc.o.d"
  "/root/repo/src/stats/random_variates.cc" "src/CMakeFiles/ausdb.dir/stats/random_variates.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/random_variates.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/CMakeFiles/ausdb.dir/stats/special_functions.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/special_functions.cc.o.d"
  "/root/repo/src/stats/weighted.cc" "src/CMakeFiles/ausdb.dir/stats/weighted.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stats/weighted.cc.o.d"
  "/root/repo/src/stream/acquisition.cc" "src/CMakeFiles/ausdb.dir/stream/acquisition.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stream/acquisition.cc.o.d"
  "/root/repo/src/stream/sources.cc" "src/CMakeFiles/ausdb.dir/stream/sources.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/stream/sources.cc.o.d"
  "/root/repo/src/workload/cartel.cc" "src/CMakeFiles/ausdb.dir/workload/cartel.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/workload/cartel.cc.o.d"
  "/root/repo/src/workload/random_query.cc" "src/CMakeFiles/ausdb.dir/workload/random_query.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/workload/random_query.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/ausdb.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/ausdb.dir/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
