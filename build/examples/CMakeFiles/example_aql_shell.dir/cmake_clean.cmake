file(REMOVE_RECURSE
  "CMakeFiles/example_aql_shell.dir/aql_shell.cpp.o"
  "CMakeFiles/example_aql_shell.dir/aql_shell.cpp.o.d"
  "example_aql_shell"
  "example_aql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_aql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
