# Empty dependencies file for example_aql_shell.
# This may be replaced when dependencies are built.
