file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_routing.dir/traffic_routing.cpp.o"
  "CMakeFiles/example_traffic_routing.dir/traffic_routing.cpp.o.d"
  "example_traffic_routing"
  "example_traffic_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
