# Empty dependencies file for example_traffic_routing.
# This may be replaced when dependencies are built.
