# Empty dependencies file for example_distribution_learning.
# This may be replaced when dependencies are built.
