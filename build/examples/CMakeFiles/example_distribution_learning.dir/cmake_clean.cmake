file(REMOVE_RECURSE
  "CMakeFiles/example_distribution_learning.dir/distribution_learning.cpp.o"
  "CMakeFiles/example_distribution_learning.dir/distribution_learning.cpp.o.d"
  "example_distribution_learning"
  "example_distribution_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distribution_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
