file(REMOVE_RECURSE
  "CMakeFiles/example_online_acquisition.dir/online_acquisition.cpp.o"
  "CMakeFiles/example_online_acquisition.dir/online_acquisition.cpp.o.d"
  "example_online_acquisition"
  "example_online_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
