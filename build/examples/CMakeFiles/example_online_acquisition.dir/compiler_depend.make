# Empty compiler generated dependencies file for example_online_acquisition.
# This may be replaced when dependencies are built.
