file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_monitoring.dir/fleet_monitoring.cpp.o"
  "CMakeFiles/example_fleet_monitoring.dir/fleet_monitoring.cpp.o.d"
  "example_fleet_monitoring"
  "example_fleet_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
