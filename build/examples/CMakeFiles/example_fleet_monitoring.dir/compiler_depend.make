# Empty compiler generated dependencies file for example_fleet_monitoring.
# This may be replaced when dependencies are built.
