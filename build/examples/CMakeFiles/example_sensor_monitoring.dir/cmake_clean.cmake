file(REMOVE_RECURSE
  "CMakeFiles/example_sensor_monitoring.dir/sensor_monitoring.cpp.o"
  "CMakeFiles/example_sensor_monitoring.dir/sensor_monitoring.cpp.o.d"
  "example_sensor_monitoring"
  "example_sensor_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensor_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
