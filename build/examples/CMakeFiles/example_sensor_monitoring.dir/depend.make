# Empty dependencies file for example_sensor_monitoring.
# This may be replaced when dependencies are built.
